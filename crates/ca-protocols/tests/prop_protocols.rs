//! Property-based tests of the protocols, centered on the paper's Lemma 6.3:
//! the eight invariants of Protocol S, checked on random runs at every
//! process and round, plus the validity/agreement contracts of every
//! protocol in the crate.

use ca_core::exec::execute;
use ca_core::flow::FlowGraph;
use ca_core::graph::Graph;
use ca_core::ids::{ProcessId, Round};
use ca_core::level::modified_levels;
use ca_core::outcome::Outcome;
use ca_core::run::Run;
use ca_core::tape::TapeSet;
use ca_protocols::{
    AttackOnInput, CombineRule, DeterministicFlood, FixedThreshold, NeverAttack, ProtocolA,
    ProtocolS, Repeat,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: u32 = 4;

fn graph_strategy() -> impl Strategy<Value = Graph> {
    (2usize..=4, 0u8..3).prop_map(|(m, kind)| match kind {
        0 => Graph::complete(m).expect("graph"),
        1 => Graph::star(m.max(2)).expect("graph"),
        _ => Graph::line(m).expect("graph"),
    })
}

fn run_strategy() -> impl Strategy<Value = (Graph, Run)> {
    graph_strategy().prop_flat_map(|g| {
        let slots: Vec<_> = Run::good(&g, N).messages().collect();
        let slot_count = slots.len();
        let m = g.len();
        (
            Just(g),
            proptest::collection::vec(any::<bool>(), m),
            proptest::collection::vec(any::<bool>(), slot_count),
        )
            .prop_map(move |(g, inputs, keeps)| {
                let mut run = Run::empty(g.len(), N);
                for (i, keep) in inputs.iter().enumerate() {
                    if *keep {
                        run.add_input(ProcessId::new(i as u32));
                    }
                }
                for (s, keep) in slots.iter().zip(&keeps) {
                    if *keep {
                        run.add_message(s.from, s.to, s.round);
                    }
                }
                (g, run)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Lemma 6.3, all eight invariants, on every (process, round) pair.
    #[test]
    fn lemma_6_3_invariants((g, run) in run_strategy(), seed in any::<u64>()) {
        let proto = ProtocolS::new(0.25);
        let mut rng = StdRng::seed_from_u64(seed);
        let tapes = TapeSet::random(&mut rng, g.len(), 64);
        let ex = execute(&proto, &g, &run, &tapes);
        let flow = FlowGraph::new(&run);
        let ml = modified_levels(&run);

        // The leader's rfire, from its initial state.
        let rfire = ex.local(ProcessId::LEADER).states[0]
            .token
            .expect("leader always has rfire");
        let m = g.len();

        for i in g.vertices() {
            for r in 0..=N {
                let st = &ex.local(i).states[r as usize];
                // (1) rfire_i is rfire or undefined.
                if let Some(tok) = st.token {
                    prop_assert_eq!(tok, rfire, "invariant 1");
                }
                // (2) count ≥ 1 iff token = rfire and valid.
                prop_assert_eq!(st.count >= 1, st.token.is_some() && st.valid, "invariant 2");
                // (3) (1,0) flows to (i,r) iff token set.
                prop_assert_eq!(
                    flow.flows_to(ProcessId::LEADER, Round::new(0), i, Round::new(r)),
                    st.token.is_some(),
                    "invariant 3"
                );
                // (4) input flows to (i,r) iff valid.
                prop_assert_eq!(flow.input_flows_to(i, Round::new(r)), st.valid, "invariant 4");
                // (5) flow (j,s) → (i,r) orders counts.
                for j in g.vertices() {
                    for s in 0..=r {
                        if flow.flows_to(j, Round::new(s), i, Round::new(r)) {
                            let cj = ex.local(j).states[s as usize].count;
                            let ok = st.count > cj
                                || (st.seen.contains(j.index()) && st.count == cj)
                                || (st.count == 0 && cj == 0);
                            prop_assert!(ok, "invariant 5: ({j},{s})→({i},{r}), cj={cj}, ci={}", st.count);
                        }
                    }
                }
                // (6) j ∈ seen_i ⟹ some (j,s) with equal count flows in.
                for j_idx in st.seen.iter() {
                    let j = ProcessId::new(j_idx as u32);
                    let witness = (0..=r).any(|s| {
                        ex.local(j).states[s as usize].count == st.count
                            && flow.flows_to(j, Round::new(s), i, Round::new(r))
                    });
                    prop_assert!(witness, "invariant 6: {j} in seen of {i} at {r}");
                }
                // (7) seen ≠ V, seen ≠ V−{i}; count ≥ 1 ⟹ i ∈ seen.
                prop_assert!(st.seen.len() < m, "invariant 7a");
                let is_v_minus_i = st.seen.len() == m - 1 && !st.seen.contains(i.index());
                prop_assert!(!is_v_minus_i, "invariant 7b");
                if st.count >= 1 {
                    prop_assert!(st.seen.contains(i.index()), "invariant 7c");
                }
                // (8) ML_i^r ≥ count_i^r — and by Lemma 6.4, equality.
                prop_assert_eq!(ml.level_at(i, Round::new(r)), st.count, "Lemma 6.4");
            }
        }
    }

    /// Validity for every protocol: no input anywhere ⟹ nobody attacks.
    #[test]
    fn validity_universal((g, run) in run_strategy(), seed in any::<u64>()) {
        let mut no_input = run.clone();
        for i in g.vertices() {
            no_input.remove_input(i);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        macro_rules! check {
            ($proto:expr) => {{
                let proto = $proto;
                let tapes = TapeSet::random(
                    &mut rng,
                    g.len(),
                    ca_core::protocol::Protocol::tape_bits(&proto).max(1),
                );
                let ex = execute(&proto, &g, &no_input, &tapes);
                prop_assert_eq!(ex.outcome(), Outcome::NoAttack);
            }};
        }
        check!(ProtocolS::new(0.5));
        check!(FixedThreshold::new(1));
        check!(DeterministicFlood::new());
        check!(NeverAttack::new());
        check!(AttackOnInput::new());
        if g.len() == 2 {
            check!(ProtocolA::new(N));
            check!(Repeat::new(ProtocolA::new(N), 2, CombineRule::All));
        }
    }

    /// Agreement for Protocol S sampled over random runs: the *empirical*
    /// disagreement rate on any single run stays consistent with ≤ ε.
    #[test]
    fn agreement_epsilon_bound((g, run) in run_strategy(), seed in any::<u64>()) {
        let eps = 0.25;
        let proto = ProtocolS::new(eps);
        let mut rng = StdRng::seed_from_u64(seed);
        let trials = 200;
        let mut pa = 0u32;
        for _ in 0..trials {
            let tapes = TapeSet::random(&mut rng, g.len(), 64);
            let ex = execute(&proto, &g, &run, &tapes);
            if ex.outcome() == Outcome::PartialAttack {
                pa += 1;
            }
        }
        // 200 trials of a Bernoulli(≤ 0.25): observing > 80 would be a
        // > 6-sigma event; treat it as a violation.
        prop_assert!(pa <= 80, "observed PA rate {} far above ε", pa as f64 / trials as f64);
    }

    /// Determinism: executions are a function of (run, tapes).
    #[test]
    fn executions_are_deterministic((g, run) in run_strategy(), seed in any::<u64>()) {
        let proto = ProtocolS::new(0.3);
        let mut rng = StdRng::seed_from_u64(seed);
        let tapes = TapeSet::random(&mut rng, g.len(), 64);
        let a = execute(&proto, &g, &run, &tapes);
        let b = execute(&proto, &g, &run, &tapes);
        for i in g.vertices() {
            prop_assert!(a.identical_to(&b, i));
        }
    }

    /// Lemma 2.1 (indistinguishability): deliveries after the last round that
    /// can influence process i do not change i's behavior. Concretely,
    /// adding a message INTO a process other than i in the final round
    /// cannot change i's local execution.
    #[test]
    fn last_round_messages_to_others_are_invisible((g, run) in run_strategy(), seed in any::<u64>()) {
        let proto = ProtocolS::new(0.3);
        let mut rng = StdRng::seed_from_u64(seed);
        let tapes = TapeSet::random(&mut rng, g.len(), 64);
        let base = execute(&proto, &g, &run, &tapes);
        for (a, b) in g.directed_edges() {
            let mut bigger = run.clone();
            bigger.add_message(a, b, Round::new(N));
            let ex = execute(&proto, &g, &bigger, &tapes);
            for i in g.vertices() {
                if i != b {
                    prop_assert!(
                        base.identical_to(&ex, i),
                        "final-round message {a}→{b} changed {i}'s view"
                    );
                }
            }
        }
    }
}
