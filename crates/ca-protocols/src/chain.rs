//! `ChainProtocol`: the natural m-general generalization of Protocol A.
//!
//! The paper's example Protocol A is defined for two generals; the obvious
//! generalization sends the single acknowledgement token along a fixed
//! Hamiltonian path `0 → 1 → … → m−1 → m−2 → … → 0 → …`, one hop per round,
//! each hop contingent on the previous one arriving. The leader draws
//! `rfire ∈ {2..N}`; a process attacks iff it knows an input arrived, knows
//! `rfire`, and *held the token* at the end of some round `≥ rfire − 1`.
//!
//! Analysis (verified exactly by the tests): if the first destroyed packet
//! is the one sent in round `d`, the attackers are exactly the processes
//! that *held the token* at the end of some round in `rfire − 1 ..= d − 1`.
//! Nobody attacks when that window is empty; everybody attacks when the
//! window covers a full bounce (which needs up to `2(m−1)` rounds depending
//! on phase); anything in between is **partial attack**. The adversary
//! therefore gets a disagreement window of `Θ(m)` rfire values instead of
//! Protocol A's single value: the chain's unsafety grows linearly in `m`
//! (≈ `2(m−1)/N` at the worst cut), which is exactly why Protocol S gossips
//! in parallel instead of serially — its unsafety is `ε`, independent of
//! `m`. This is a designed baseline for the m-general experiments, not a
//! protocol from the paper.

use ca_core::ids::{ProcessId, Round};
use ca_core::protocol::{Ctx, Protocol};
use ca_core::tape::TapeReader;
use serde::{Deserialize, Serialize};

/// The chain-token generalization of Protocol A, over the line graph
/// `0 − 1 − … − m−1`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChainProtocol {
    n: u32,
}

/// A chain packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChainPacket {
    /// The leader's firing round, if known to the sender.
    pub rfire: Option<u32>,
    /// Whether the sender knows an input arrived.
    pub valid: bool,
}

/// Message: a packet or null.
pub type ChainMsg = Option<ChainPacket>;

/// Per-process state.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChainState {
    /// Last completed round.
    pub round: u32,
    /// The firing round, if known.
    pub rfire: Option<u32>,
    /// Whether an input is known to have arrived.
    pub valid: bool,
    /// Whether this process holds the token (received it last round, or is
    /// the chain's origin before round 1).
    pub holds_token: bool,
    /// The latest round at the end of which this process held the token
    /// (`0` = held before round 1 / never).
    pub last_held: u32,
}

impl ChainProtocol {
    /// Creates the chain protocol for an `N`-round horizon.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: u32) -> Self {
        assert!(n >= 2, "chain protocol needs N >= 2, got {n}");
        ChainProtocol { n }
    }

    /// The token's intended holder at the end of round `r` on a path of `m`
    /// vertices: bounce `0,1,…,m−1,m−2,…,1,0,1,…` (position after `r` hops).
    pub fn holder_at(m: usize, r: u32) -> ProcessId {
        let period = 2 * (m as u32 - 1);
        let k = r % period;
        let pos = if k < m as u32 { k } else { period - k };
        ProcessId::new(pos)
    }

    /// The neighbor the round-`r` hop goes to, from the end-of-round-`(r−1)`
    /// holder.
    fn next_hop(m: usize, r: u32) -> (ProcessId, ProcessId) {
        (Self::holder_at(m, r - 1), Self::holder_at(m, r))
    }

    /// The largest usable firing round for `m` generals: after `rfire` the
    /// token must still complete a full bounce (any window of `2(m−1)`
    /// consecutive rounds visits every vertex), so
    /// `rfire ≤ N + 2 − 2(m−1) = N − 2m + 4`. For `m = 2` this is `N`,
    /// recovering Protocol A's range.
    pub fn max_rfire(m: usize, n: u32) -> u32 {
        n + 4 - 2 * m as u32
    }
}

impl Protocol for ChainProtocol {
    type State = ChainState;
    type Msg = ChainMsg;

    fn name(&self) -> &'static str {
        "chain"
    }

    fn tape_bits(&self) -> usize {
        64 * 64
    }

    fn init(&self, ctx: Ctx<'_>, received_input: bool, tape: &mut TapeReader<'_>) -> ChainState {
        assert_eq!(ctx.n, self.n, "run horizon differs from protocol horizon");
        let hi = Self::max_rfire(ctx.m(), self.n);
        assert!(
            hi >= 2,
            "horizon too short for {} generals: need N ≥ 2m − 2",
            ctx.m()
        );
        let rfire = if ctx.id == ProcessId::LEADER {
            Some(2 + tape.draw_below(u64::from(hi) - 1) as u32)
        } else {
            None
        };
        ChainState {
            round: 0,
            rfire,
            valid: received_input,
            holds_token: ctx.id == ProcessId::LEADER,
            last_held: 0,
        }
    }

    fn message(&self, ctx: Ctx<'_>, state: &ChainState, to: ProcessId) -> ChainMsg {
        let r = state.round + 1;
        if r > self.n {
            return None;
        }
        let (from_expected, to_expected) = Self::next_hop(ctx.m(), r);
        if ctx.id == from_expected && to == to_expected && state.holds_token {
            Some(ChainPacket {
                rfire: state.rfire,
                valid: state.valid,
            })
        } else {
            None
        }
    }

    fn transition(
        &self,
        ctx: Ctx<'_>,
        state: &ChainState,
        round: Round,
        received: &[(ProcessId, ChainMsg)],
        _tape: &mut TapeReader<'_>,
    ) -> ChainState {
        let mut next = *state;
        next.round = round.get();
        // Sending the token relinquishes it (whether or not it arrives).
        let (from_expected, to_expected) = Self::next_hop(ctx.m(), round.get());
        if ctx.id == from_expected {
            next.holds_token = false;
        }
        for (_, msg) in received {
            if let Some(packet) = msg {
                if ctx.id == to_expected {
                    next.holds_token = true;
                    next.last_held = round.get();
                    if next.rfire.is_none() {
                        next.rfire = packet.rfire;
                    }
                    next.valid |= packet.valid;
                }
            }
        }
        next
    }

    fn output(&self, _ctx: Ctx<'_>, state: &ChainState) -> bool {
        match state.rfire {
            Some(rfire) => state.valid && state.last_held + 1 >= rfire,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_core::exec::execute;
    use ca_core::graph::Graph;
    use ca_core::outcome::Outcome;
    use ca_core::run::Run;
    use ca_core::tape::{BitTape, TapeSet};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(m: usize, n: u32) -> (ChainProtocol, Graph) {
        (ChainProtocol::new(n), Graph::line(m).expect("graph"))
    }

    /// Tapes that force a specific rfire on the leader.
    fn forced_tapes(m: usize, n: u32, rfire: u32) -> TapeSet {
        assert!((2..=ChainProtocol::max_rfire(m, n)).contains(&rfire));
        let word = u64::from(rfire - 2);
        TapeSet::from_tapes(
            (0..m)
                .map(|i| BitTape::from_words(vec![if i == 0 { word } else { 0 }; 64]))
                .collect(),
        )
    }

    #[test]
    fn holder_bounces_along_the_path() {
        // m = 3, period 4: 0,1,2,1,0,1,2,…
        let seq: Vec<u32> = (0..8)
            .map(|r| ChainProtocol::holder_at(3, r).as_u32())
            .collect();
        assert_eq!(seq, vec![0, 1, 2, 1, 0, 1, 2, 1]);
        // m = 2, period 2: 0,1,0,1…
        let seq: Vec<u32> = (0..4)
            .map(|r| ChainProtocol::holder_at(2, r).as_u32())
            .collect();
        assert_eq!(seq, vec![0, 1, 0, 1]);
    }

    #[test]
    fn good_run_total_attack() {
        let (proto, g) = setup(3, 9);
        let run = Run::good(&g, 9);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let t = TapeSet::random(&mut rng, 3, proto.tape_bits());
            let ex = execute(&proto, &g, &run, &t);
            assert_eq!(ex.outcome(), Outcome::TotalAttack, "good run must TA");
        }
    }

    #[test]
    fn validity_holds() {
        let (proto, g) = setup(3, 6);
        let run = Run::good_with_inputs(&g, 6, &[]);
        let mut rng = StdRng::seed_from_u64(2);
        let t = TapeSet::random(&mut rng, 3, proto.tape_bits());
        let ex = execute(&proto, &g, &run, &t);
        assert_eq!(ex.outcome(), Outcome::NoAttack);
    }

    /// The model prediction: attackers under a cut at round `d` with firing
    /// round `rfire` are the token holders of rounds `rfire−1 ..= d−1`
    /// (holding via *receipt*, so round ≥ 1).
    fn predicted_attackers(m: usize, d: u32, rfire: u32) -> Vec<bool> {
        let mut attackers = vec![false; m];
        let lo = (rfire - 1).max(1);
        for r in lo..d {
            attackers[ChainProtocol::holder_at(m, r).index()] = true;
        }
        attackers
    }

    #[test]
    fn exact_case_analysis_of_cuts() {
        // The executed protocol matches the attacker-window prediction,
        // exhaustively over (d, rfire) for m = 3 and m = 4.
        let n = 10u32;
        for m in [2usize, 3, 4] {
            let (proto, g) = setup(m, n);
            for d in 2..=n {
                for rfire in 2..=ChainProtocol::max_rfire(m, n) {
                    let mut run = Run::good(&g, n);
                    run.cut_from_round(Round::new(d));
                    let t = forced_tapes(m, n, rfire);
                    let ex = execute(&proto, &g, &run, &t);
                    assert_eq!(
                        ex.outputs(),
                        predicted_attackers(m, d, rfire),
                        "m={m}, d={d}, rfire={rfire}"
                    );
                }
            }
        }
    }

    #[test]
    fn unsafety_grows_linearly_with_m() {
        // The chain gives the adversary Θ(m) disagreement-causing rfire
        // values at its best cut, vs Protocol A's single one: compute the
        // exact worst-case PA count over all cuts, per m.
        let n = 16u32;
        let mut last_worst = 0u32;
        for m in [2usize, 3, 4, 5] {
            let (proto, g) = setup(m, n);
            let mut worst = 0u32;
            for d in 2..=n {
                let mut run = Run::good(&g, n);
                run.cut_from_round(Round::new(d));
                let mut pa = 0u32;
                for rfire in 2..=ChainProtocol::max_rfire(m, n) {
                    let t = forced_tapes(m, n, rfire);
                    if execute(&proto, &g, &run, &t).outcome() == Outcome::PartialAttack {
                        pa += 1;
                    }
                }
                worst = worst.max(pa);
            }
            // m = 2 reduces to Protocol A: exactly one bad rfire per cut.
            if m == 2 {
                assert_eq!(worst, 1);
            }
            assert!(
                worst >= last_worst && worst >= (m as u32 - 1),
                "worst PA count must grow with m: m={m}, worst={worst}"
            );
            last_worst = worst;
        }
    }

    #[test]
    fn token_is_never_duplicated() {
        let (proto, g) = setup(4, 12);
        let run = Run::good(&g, 12);
        let mut rng = StdRng::seed_from_u64(3);
        let t = TapeSet::random(&mut rng, 4, proto.tape_bits());
        let ex = execute(&proto, &g, &run, &t);
        for r in 0..=12usize {
            let holders = g
                .vertices()
                .filter(|i| ex.local(*i).states[r].holds_token)
                .count();
            assert!(holders <= 1, "token duplicated at round {r}");
        }
    }

    #[test]
    #[should_panic(expected = "N >= 2")]
    fn rejects_short_horizon() {
        ChainProtocol::new(1);
    }
}
