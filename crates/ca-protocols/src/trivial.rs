//! Trivial corner-of-the-tradeoff protocols.
//!
//! The tradeoff space has two degenerate corners: **never attack** (perfectly
//! safe, `U = 0`, but `L(R) = 0` on every run — it violates only
//! nontriviality) and **attack on your own input** (maximally live but with
//! `U = 1`: the adversary delivers the input to one general only). They
//! anchor the experiment tables.

use ca_core::ids::{ProcessId, Round};
use ca_core::protocol::{Ctx, Protocol};
use ca_core::tape::TapeReader;

/// Never attacks. `U = 0`, `L(R) = 0` for all runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NeverAttack;

impl NeverAttack {
    /// Creates the protocol.
    pub fn new() -> Self {
        NeverAttack
    }
}

impl Protocol for NeverAttack {
    type State = ();
    type Msg = ();

    fn name(&self) -> &'static str {
        "never"
    }
    fn tape_bits(&self) -> usize {
        0
    }
    fn init(&self, _ctx: Ctx<'_>, _received_input: bool, _tape: &mut TapeReader<'_>) {}
    fn message(&self, _ctx: Ctx<'_>, _state: &(), _to: ProcessId) {}
    fn transition(
        &self,
        _ctx: Ctx<'_>,
        _state: &(),
        _round: Round,
        _received: &[(ProcessId, ())],
        _tape: &mut TapeReader<'_>,
    ) {
    }
    fn output(&self, _ctx: Ctx<'_>, _state: &()) -> bool {
        false
    }
}

/// Attacks iff the input signal flowed to this process (flooded maximally).
/// Satisfies validity and has `L = 1` whenever every process hears the input,
/// but `U = 1`: delivering the input to exactly one general and destroying
/// every message forces certain disagreement.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AttackOnInput;

impl AttackOnInput {
    /// Creates the protocol.
    pub fn new() -> Self {
        AttackOnInput
    }
}

impl Protocol for AttackOnInput {
    type State = bool;
    type Msg = bool;

    fn name(&self) -> &'static str {
        "attack-on-input"
    }
    fn tape_bits(&self) -> usize {
        0
    }
    fn init(&self, _ctx: Ctx<'_>, received_input: bool, _tape: &mut TapeReader<'_>) -> bool {
        received_input
    }
    fn message(&self, _ctx: Ctx<'_>, state: &bool, _to: ProcessId) -> bool {
        *state
    }
    fn transition(
        &self,
        _ctx: Ctx<'_>,
        state: &bool,
        _round: Round,
        received: &[(ProcessId, bool)],
        _tape: &mut TapeReader<'_>,
    ) -> bool {
        *state || received.iter().any(|(_, v)| *v)
    }
    fn output(&self, _ctx: Ctx<'_>, state: &bool) -> bool {
        *state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_core::exec::execute;
    use ca_core::graph::Graph;
    use ca_core::outcome::Outcome;
    use ca_core::run::Run;
    use ca_core::tape::TapeSet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tapes(m: usize) -> TapeSet {
        let mut rng = StdRng::seed_from_u64(1);
        TapeSet::random(&mut rng, m, 64)
    }

    #[test]
    fn never_attack_is_perfectly_safe_and_dead() {
        let g = Graph::complete(2).unwrap();
        for run in [Run::good(&g, 2), Run::empty(2, 2)] {
            let ex = execute(&NeverAttack::new(), &g, &run, &tapes(2));
            assert_eq!(ex.outcome(), Outcome::NoAttack);
        }
    }

    #[test]
    fn attack_on_input_lives_on_good_run() {
        let g = Graph::complete(2).unwrap();
        let ex = execute(&AttackOnInput::new(), &g, &Run::good(&g, 2), &tapes(2));
        assert_eq!(ex.outcome(), Outcome::TotalAttack);
    }

    #[test]
    fn attack_on_input_is_maximally_unsafe() {
        // Input to one general, all messages destroyed: certain disagreement.
        let g = Graph::complete(2).unwrap();
        let mut run = Run::empty(2, 2);
        run.add_input(ProcessId::new(0));
        let ex = execute(&AttackOnInput::new(), &g, &run, &tapes(2));
        assert_eq!(ex.outcome(), Outcome::PartialAttack);
    }

    #[test]
    fn attack_on_input_satisfies_validity() {
        let g = Graph::complete(2).unwrap();
        let run = Run::good_with_inputs(&g, 2, &[]);
        let ex = execute(&AttackOnInput::new(), &g, &run, &tapes(2));
        assert_eq!(ex.outcome(), Outcome::NoAttack);
    }
}
