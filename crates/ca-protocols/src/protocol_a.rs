//! Protocol A: the simple two-general example protocol (Section 3).
//!
//! Process 1 (code: [`ProcessId::LEADER`], id 0) draws `rfire` uniformly in
//! `{2, …, N}` and includes it in every packet. The two processes bounce a
//! single chain of packets: process 2 (code: id 1) sends in odd rounds
//! starting with round 1, process 1 in even rounds, and after round 1 a
//! process sends a packet only if it received one in the previous round. If
//! the adversary destroys a packet, the chain — and all packet traffic —
//! stops.
//!
//! A process attacks iff it knows an input arrived, knows `rfire`, and
//! received the chain packet of round `rfire - 1` or later. If the first
//! destroyed packet is the one sent in round `d`, then
//!
//! * `d > rfire`: both attack,
//! * `d = rfire`: exactly one attacks — the adversary wins,
//! * `d < rfire`: neither attacks.
//!
//! Since the adversary cannot see `rfire`, its best strategy hits
//! `d = rfire` with probability `1/(N-1)`, so `U_s(A) = 1/(N-1) ≈ 1/N`,
//! while liveness on the good run is 1. The two questions this protocol
//! raises (§3) — can `U` be pushed below `1/N` while keeping `L = 1`? can
//! liveness degrade gracefully instead of collapsing to 0 when one mid-chain
//! packet dies? — are answered by Theorem 5.4 (no) and Protocol S
//! (gracefully, yes).
//!
//! Validity is implemented as in the paper: packets carry an input bit, and
//! process 1 refuses to send its round-2 packet unless it knows (from its own
//! signal or process 2's packet) that an input arrived.

use ca_core::ids::{ProcessId, Round};
use ca_core::protocol::{Ctx, Protocol};
use ca_core::tape::TapeReader;
use serde::{Deserialize, Serialize};

/// Protocol A for two generals and horizon `N ≥ 2`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtocolA {
    n: u32,
}

impl ProtocolA {
    /// Creates Protocol A for an `N`-round horizon.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` (the `rfire` range `{2..=N}` would be empty).
    pub fn new(n: u32) -> Self {
        assert!(n >= 2, "protocol A needs N >= 2, got {n}");
        ProtocolA { n }
    }

    /// The horizon this instance was built for.
    pub fn horizon(&self) -> u32 {
        self.n
    }
}

/// A (non-null) packet: the chain token plus piggybacked metadata.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// The leader's firing round, if the sender knows it.
    pub rfire: Option<u32>,
    /// Whether the sender knows an input signal arrived.
    pub valid: bool,
}

/// Protocol A message: a packet or a null message.
pub type AMsg = Option<Packet>;

/// Per-process state of Protocol A.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AState {
    /// The last completed round (0 after init).
    pub round: u32,
    /// The firing round: the leader knows it from the start, the other
    /// process learns it from packets.
    pub rfire: Option<u32>,
    /// Whether this process knows an input signal arrived.
    pub valid: bool,
    /// Whether the expected chain packet arrived in the round just completed.
    pub got_packet_last_round: bool,
    /// The highest round whose chain packet this process received (0 = none).
    pub best_received_round: u32,
}

impl ProtocolA {
    /// Whether `who` is scheduled to send a packet in `round`, ignoring the
    /// chain/validity conditions: process 2 (id 1) sends odd rounds, process
    /// 1 (id 0) sends even rounds.
    fn is_senders_turn(who: ProcessId, round: u32) -> bool {
        if who == ProcessId::LEADER {
            round.is_multiple_of(2)
        } else {
            round % 2 == 1
        }
    }

    /// The send decision for the round after `state.round`.
    fn will_send_packet(&self, id: ProcessId, state: &AState) -> bool {
        let r = state.round + 1;
        if r > self.n || !Self::is_senders_turn(id, r) {
            return false;
        }
        if r == 1 {
            // Process 2 opens the chain unconditionally.
            return true;
        }
        if !state.got_packet_last_round {
            return false;
        }
        // The validity gate: process 1 does not send its round-2 packet
        // unless it knows an input arrived.
        if r == 2 && !state.valid {
            return false;
        }
        true
    }
}

impl Protocol for ProtocolA {
    type State = AState;
    type Msg = AMsg;

    fn name(&self) -> &'static str {
        "A"
    }

    fn tape_bits(&self) -> usize {
        // Rejection sampling draws 64 bits per attempt; 64 attempts make the
        // failure probability astronomically small.
        64 * 64
    }

    fn init(&self, ctx: Ctx<'_>, received_input: bool, tape: &mut TapeReader<'_>) -> AState {
        assert_eq!(ctx.m(), 2, "protocol A is defined for exactly 2 generals");
        assert_eq!(ctx.n, self.n, "run horizon differs from protocol horizon");
        let rfire = if ctx.id == ProcessId::LEADER {
            Some(2 + tape.draw_below(u64::from(self.n) - 1) as u32)
        } else {
            None
        };
        AState {
            round: 0,
            rfire,
            valid: received_input,
            got_packet_last_round: false,
            best_received_round: 0,
        }
    }

    fn message(&self, ctx: Ctx<'_>, state: &AState, _to: ProcessId) -> AMsg {
        if self.will_send_packet(ctx.id, state) {
            Some(Packet {
                rfire: state.rfire,
                valid: state.valid,
            })
        } else {
            None
        }
    }

    fn transition(
        &self,
        _ctx: Ctx<'_>,
        state: &AState,
        round: Round,
        received: &[(ProcessId, AMsg)],
        _tape: &mut TapeReader<'_>,
    ) -> AState {
        let mut next = *state;
        next.round = round.get();
        next.got_packet_last_round = false;
        for (_, msg) in received {
            if let Some(packet) = msg {
                next.got_packet_last_round = true;
                next.best_received_round = next.best_received_round.max(round.get());
                if next.rfire.is_none() {
                    next.rfire = packet.rfire;
                }
                next.valid |= packet.valid;
            }
        }
        next
    }

    fn output(&self, _ctx: Ctx<'_>, state: &AState) -> bool {
        match state.rfire {
            Some(rfire) => state.valid && state.best_received_round + 1 >= rfire,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_core::exec::execute;
    use ca_core::graph::Graph;
    use ca_core::outcome::Outcome;
    use ca_core::run::Run;
    use ca_core::tape::TapeSet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    fn setup(n: u32) -> (ProtocolA, Graph) {
        (ProtocolA::new(n), Graph::complete(2).unwrap())
    }

    fn tapes(rng: &mut StdRng) -> TapeSet {
        TapeSet::random(rng, 2, 64 * 64)
    }

    #[test]
    #[should_panic(expected = "N >= 2")]
    fn rejects_short_horizon() {
        ProtocolA::new(1);
    }

    #[test]
    fn good_run_both_attack() {
        // L(A, R_g) = 1: on the good run both always attack.
        let (proto, g) = setup(6);
        let run = Run::good(&g, 6);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let ex = execute(&proto, &g, &run, &tapes(&mut rng));
            assert_eq!(ex.outcome(), Outcome::TotalAttack);
        }
    }

    #[test]
    fn validity_no_input_no_attack() {
        let (proto, g) = setup(5);
        let run = Run::good_with_inputs(&g, 5, &[]);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let ex = execute(&proto, &g, &run, &tapes(&mut rng));
            assert_eq!(ex.outcome(), Outcome::NoAttack);
        }
    }

    #[test]
    fn input_only_at_leader_still_lives() {
        // Process 2's round-1 packet carries valid=false, but process 1 has
        // its own signal; the chain proceeds and process 2 learns validity
        // from the round-2 packet.
        let (proto, g) = setup(6);
        let run = Run::good_with_inputs(&g, 6, &[p(0)]);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let ex = execute(&proto, &g, &run, &tapes(&mut rng));
            assert_eq!(ex.outcome(), Outcome::TotalAttack);
        }
    }

    #[test]
    fn input_only_at_follower_still_lives() {
        // Process 1 learns validity from process 2's round-1 packet.
        let (proto, g) = setup(6);
        let run = Run::good_with_inputs(&g, 6, &[p(1)]);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            let ex = execute(&proto, &g, &run, &tapes(&mut rng));
            assert_eq!(ex.outcome(), Outcome::TotalAttack);
        }
    }

    #[test]
    fn dropped_round_one_packet_kills_everything() {
        // d = 1 < rfire: chain never starts, nobody attacks.
        let (proto, g) = setup(5);
        let mut run = Run::good(&g, 5);
        run.remove_message(p(1), p(0), Round::new(1));
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let ex = execute(&proto, &g, &run, &tapes(&mut rng));
            assert_eq!(ex.outcome(), Outcome::NoAttack);
        }
    }

    #[test]
    fn dropped_round_two_packet_gives_zero_liveness() {
        // The §3 example: all messages delivered except process 1's round-2
        // packet. rfire ≥ 2 ⟹ Pr[TA] = 0; PA happens iff rfire = 2.
        let (proto, g) = setup(6);
        let mut run = Run::good(&g, 6);
        run.remove_message(p(0), p(1), Round::new(2));
        let mut rng = StdRng::seed_from_u64(6);
        let trials = 3000;
        let mut pa = 0;
        for _ in 0..trials {
            let ex = execute(&proto, &g, &run, &tapes(&mut rng));
            match ex.outcome() {
                Outcome::TotalAttack => panic!("TA impossible when the chain dies at round 2"),
                Outcome::PartialAttack => pa += 1,
                Outcome::NoAttack => {}
            }
        }
        // Pr[PA] = Pr[rfire = 2] = 1/(N-1) = 1/5.
        let rate = pa as f64 / trials as f64;
        assert!((rate - 0.2).abs() < 0.03, "PA rate {rate} should be ≈ 1/5");
    }

    #[test]
    fn cut_at_round_d_splits_iff_rfire_equals_d() {
        // Exhaustively check the d-vs-rfire case analysis by fixing rfire via
        // the tape: tape word w gives rfire = 2 + (w mod (N-1)).
        let n = 7u32;
        let (proto, g) = setup(n);
        for d in 2..=n {
            for rfire in 2..=n {
                // Find a tape word that produces this rfire (w = rfire - 2
                // works because w < zone for small w).
                let word = u64::from(rfire - 2);
                let t = TapeSet::from_tapes(vec![
                    ca_core::tape::BitTape::from_words(vec![word; 64]),
                    ca_core::tape::BitTape::from_words(vec![0; 64]),
                ]);
                let mut run = Run::good(&g, n);
                run.cut_from_round(Round::new(d));
                let ex = execute(&proto, &g, &run, &t);
                let expected = if d > rfire {
                    Outcome::TotalAttack
                } else if d == rfire {
                    Outcome::PartialAttack
                } else {
                    Outcome::NoAttack
                };
                assert_eq!(ex.outcome(), expected, "d={d}, rfire={rfire}");
            }
        }
    }

    #[test]
    fn chain_stops_after_first_destroyed_packet() {
        // After a cut, no packets are sent in later rounds (the model still
        // delivers null messages, which must be ignored).
        let n = 6u32;
        let (proto, g) = setup(n);
        let mut run = Run::good(&g, n);
        run.remove_message(p(1), p(0), Round::new(3));
        let mut rng = StdRng::seed_from_u64(8);
        let ex = execute(&proto, &g, &run, &tapes(&mut rng));
        // Process 1 never sends a packet in round 4 (it got nothing in 3).
        let sent = &ex.local(p(0)).sent[4];
        assert_eq!(sent.len(), 1);
        assert_eq!(sent[0].1, None, "round-4 message must be null");
        // And process 2 sends nothing in round 5 either.
        assert_eq!(ex.local(p(1)).sent[5][0].1, None);
    }

    #[test]
    fn no_input_means_leader_stops_at_round_two() {
        let (proto, g) = setup(5);
        let run = Run::good_with_inputs(&g, 5, &[]);
        let mut rng = StdRng::seed_from_u64(9);
        let ex = execute(&proto, &g, &run, &tapes(&mut rng));
        assert_eq!(
            ex.local(p(0)).sent[2][0].1,
            None,
            "validity gate blocks round 2"
        );
    }

    #[test]
    fn unsafety_close_to_one_over_n() {
        // The adversary's best move: cut at a fixed round d ∈ {2..N}. The
        // disagreement probability is exactly 1/(N-1) at every such d.
        let n = 9u32;
        let (proto, g) = setup(n);
        let mut rng = StdRng::seed_from_u64(10);
        let trials = 2000;
        for d in [2u32, 5, 9] {
            let mut run = Run::good(&g, n);
            run.cut_from_round(Round::new(d));
            let mut pa = 0;
            for _ in 0..trials {
                let ex = execute(&proto, &g, &run, &tapes(&mut rng));
                if ex.outcome() == Outcome::PartialAttack {
                    pa += 1;
                }
            }
            let rate = pa as f64 / trials as f64;
            let expect = 1.0 / (n as f64 - 1.0);
            assert!(
                (rate - expect).abs() < 0.025,
                "PA rate {rate} at cut {d}, expected ≈ {expect}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "exactly 2 generals")]
    fn rejects_more_than_two_generals() {
        let proto = ProtocolA::new(4);
        let g = Graph::complete(3).unwrap();
        let run = Run::good(&g, 4);
        let mut rng = StdRng::seed_from_u64(11);
        let t = TapeSet::random(&mut rng, 3, 64 * 64);
        execute(&proto, &g, &run, &t);
    }
}
