//! A deterministic baseline, exhibiting the classic impossibility.
//!
//! No deterministic protocol can satisfy validity, (certain) agreement, and
//! nontriviality against a strong adversary ([Gray 78], [Halpern–Moses 84]).
//! This baseline — "attack iff I heard the input and my view of the run is
//! complete" — makes the failure concrete and measurable: liveness on the
//! good run is 1 and validity holds, but a single destroyed message in the
//! last round makes disagreement *certain* (`U_s = 1`), which is the point
//! the paper's randomized protocols improve on.

use ca_core::ids::{ProcessId, Round};
use ca_core::protocol::{Ctx, Protocol};
use ca_core::tape::TapeReader;
use serde::{Deserialize, Serialize};

/// The deterministic flood-and-confirm baseline.
///
/// Each process floods the input bit and tracks whether it has received a
/// message from **every** neighbor in **every** round so far ("complete
/// view"). It attacks iff it knows an input arrived and its view is complete.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeterministicFlood;

impl DeterministicFlood {
    /// Creates the baseline protocol.
    pub fn new() -> Self {
        DeterministicFlood
    }
}

/// State: validity plus view-completeness.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FloodState {
    /// Whether an input signal is known to have arrived somewhere.
    pub valid: bool,
    /// Whether every expected message has arrived so far.
    pub complete_view: bool,
}

/// Message: the sender's validity bit.
pub type FloodMsg = bool;

impl Protocol for DeterministicFlood {
    type State = FloodState;
    type Msg = FloodMsg;

    fn name(&self) -> &'static str {
        "det-flood"
    }

    fn tape_bits(&self) -> usize {
        0
    }

    fn init(&self, _ctx: Ctx<'_>, received_input: bool, _tape: &mut TapeReader<'_>) -> FloodState {
        FloodState {
            valid: received_input,
            complete_view: true,
        }
    }

    fn message(&self, _ctx: Ctx<'_>, state: &FloodState, _to: ProcessId) -> FloodMsg {
        state.valid
    }

    fn transition(
        &self,
        ctx: Ctx<'_>,
        state: &FloodState,
        _round: Round,
        received: &[(ProcessId, FloodMsg)],
        _tape: &mut TapeReader<'_>,
    ) -> FloodState {
        FloodState {
            valid: state.valid || received.iter().any(|(_, v)| *v),
            complete_view: state.complete_view && received.len() == ctx.neighbors().len(),
        }
    }

    fn output(&self, _ctx: Ctx<'_>, state: &FloodState) -> bool {
        state.valid && state.complete_view
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_core::exec::execute;
    use ca_core::graph::Graph;
    use ca_core::outcome::Outcome;
    use ca_core::run::Run;
    use ca_core::tape::TapeSet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    fn tapes(m: usize) -> TapeSet {
        let mut rng = StdRng::seed_from_u64(1);
        TapeSet::random(&mut rng, m, 64)
    }

    #[test]
    fn liveness_one_on_good_run() {
        let g = Graph::complete(3).unwrap();
        let run = Run::good(&g, 4);
        let ex = execute(&DeterministicFlood::new(), &g, &run, &tapes(3));
        assert_eq!(ex.outcome(), Outcome::TotalAttack);
    }

    #[test]
    fn validity_holds() {
        let g = Graph::complete(3).unwrap();
        let run = Run::good_with_inputs(&g, 4, &[]);
        let ex = execute(&DeterministicFlood::new(), &g, &run, &tapes(3));
        assert_eq!(ex.outcome(), Outcome::NoAttack);
    }

    #[test]
    fn single_last_round_drop_causes_certain_disagreement() {
        // The impossibility made concrete: U_s(det-flood) = 1.
        let g = Graph::complete(2).unwrap();
        let mut run = Run::good(&g, 4);
        run.remove_message(p(0), p(1), Round::new(4));
        let ex = execute(&DeterministicFlood::new(), &g, &run, &tapes(2));
        assert_eq!(ex.outcome(), Outcome::PartialAttack);
        assert!(ex.local(p(0)).output, "sender's view is still complete");
        assert!(!ex.local(p(1)).output, "receiver's view is broken");
    }

    #[test]
    fn deterministic_output_ignores_tapes() {
        let g = Graph::complete(2).unwrap();
        let run = Run::good(&g, 3);
        let a = execute(&DeterministicFlood::new(), &g, &run, &tapes(2));
        let mut rng = StdRng::seed_from_u64(99);
        let other = TapeSet::random(&mut rng, 2, 64);
        let b = execute(&DeterministicFlood::new(), &g, &run, &other);
        assert_eq!(a.outputs(), b.outputs());
    }
}
