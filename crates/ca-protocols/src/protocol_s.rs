//! Protocol S: the optimal protocol against a strong adversary (Section 6).
//!
//! The leader (the paper's process 1) draws `rfire`, a uniform real in
//! `(0, 1/ε]`, and attaches it to every message. Every process runs the
//! level-counting automaton of Figure 1, so `count_i` tracks the modified
//! level `ML_i^r(R)` exactly (Lemma 6.4). After `N` rounds, process `i`
//! attacks iff it has heard `rfire` and `count_i ≥ rfire`.
//!
//! Guarantees proved in the paper and re-verified by this workspace's tests
//! and experiments:
//!
//! * **Validity** (Theorem 6.5): no input ⟹ nobody attacks.
//! * **Agreement** (Theorem 6.7): `U_s(S) ≤ ε` — the counts of any two
//!   processes differ by at most 1 (Lemma 6.2), so only an adversary lucky
//!   enough to have `rfire` land in a unit-length interval causes
//!   disagreement.
//! * **Liveness** (Theorem 6.8): `L(S, R) ≥ min(1, ε·ML(R))` on *every* run
//!   `R` — liveness degrades gracefully with the information the adversary
//!   lets through, matching the lower bound of Theorem 5.4 up to one level.
//!
//! The uniform real is realized from the tape with 64-bit resolution
//! (`rfire = (k+1)/2^64 · 1/ε` for uniform `k`), which perturbs any single
//! probability by at most `2⁻⁶⁴`; the exact analysis in `ca-analysis`
//! treats `rfire` as an ideal uniform real instead.

use crate::counting::{CountingMsg, CountingState};
use ca_core::ids::{ProcessId, Round};
use ca_core::protocol::{Ctx, Protocol};
use ca_core::tape::TapeReader;

/// Which validity condition the protocol enforces (footnote 1 of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ValidityMode {
    /// The paper's preferred condition: if no *input* arrives, nobody
    /// attacks. (The default.)
    InputBased,
    /// The alternative condition: if no *messages* are delivered, nobody
    /// attacks. Realized by drawing `rfire` from `(1, 1/ε + 1]` instead of
    /// `(0, 1/ε]`: attacking then requires `count ≥ 2`, which requires
    /// having received at least one message. The paper notes its results
    /// "can be modified to fit the other validity condition" — this is the
    /// modification, at the cost of one count level of liveness.
    MessageBased,
}

/// Protocol S, parameterized by the agreement parameter `ε`.
#[derive(Clone, Debug, PartialEq)]
pub struct ProtocolS {
    epsilon: f64,
    validity: ValidityMode,
    slack: u32,
}

/// State of one Protocol S process: the counting automaton with the `rfire`
/// value as the leader token.
pub type SState = CountingState<f64>;

/// Protocol S message: the full counting state (Figure 1's
/// `m(rfire, count, seen, valid)`).
pub type SMsg = CountingMsg<f64>;

impl ProtocolS {
    /// Creates Protocol S with agreement parameter `epsilon` (`U_s ≤ ε`).
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not in `(0, 1]`.
    pub fn new(epsilon: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon <= 1.0,
            "epsilon must be in (0, 1], got {epsilon}"
        );
        ProtocolS {
            epsilon,
            validity: ValidityMode::InputBased,
            slack: 0,
        }
    }

    /// Creates Protocol S satisfying the footnote-1 **message-based**
    /// validity condition: if no messages are delivered, nobody attacks.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not in `(0, 1]`.
    pub fn with_message_validity(epsilon: f64) -> Self {
        let mut s = ProtocolS::new(epsilon);
        s.validity = ValidityMode::MessageBased;
        s
    }

    /// Creates the **eager** variant: attack iff `count ≥ 1` and
    /// `count + 1 ≥ rfire` — one count level of extra liveness
    /// (`L = min(1, ε·(ML(R)+1))` on runs with `ML ≥ 1`).
    ///
    /// This variant exists to realize Theorem A.1's dichotomy: its liveness
    /// beats `ε·ML(R)` on low-information runs, and the theorem's price is
    /// real — its worst-case unsafety is `2ε` (attained on the run
    /// `R₁ = {(v₀,1,0)}`, where the leader attacks alone whenever
    /// `rfire ≤ 2`). See experiment X5.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not in `(0, 1]`.
    pub fn eager(epsilon: f64) -> Self {
        let mut s = ProtocolS::new(epsilon);
        s.slack = 1;
        s
    }

    /// The decision slack: attack iff `count ≥ 1 ∧ count + slack ≥ rfire`
    /// (0 for standard Protocol S).
    pub fn slack(&self) -> u32 {
        self.slack
    }

    /// The agreement parameter `ε`.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The validity condition this instance enforces.
    pub fn validity(&self) -> ValidityMode {
        self.validity
    }

    /// The firing range upper bound `t = 1/ε`: `rfire` is uniform in
    /// `(offset, t + offset]` where the offset is 0 (input-based validity)
    /// or 1 (message-based).
    pub fn t(&self) -> f64 {
        1.0 / self.epsilon
    }

    fn rfire_offset(&self) -> f64 {
        match self.validity {
            ValidityMode::InputBased => 0.0,
            ValidityMode::MessageBased => 1.0,
        }
    }
}

impl Protocol for ProtocolS {
    type State = SState;
    type Msg = SMsg;

    fn name(&self) -> &'static str {
        "S"
    }

    fn tape_bits(&self) -> usize {
        64
    }

    fn init(&self, ctx: Ctx<'_>, received_input: bool, tape: &mut TapeReader<'_>) -> SState {
        let token = if ctx.id == ProcessId::LEADER {
            Some(self.rfire_offset() + self.t() * tape.draw_unit())
        } else {
            None
        };
        CountingState::initial(ctx.m(), ctx.id, received_input, token)
    }

    fn message(&self, _ctx: Ctx<'_>, state: &SState, _to: ProcessId) -> SMsg {
        state.to_msg()
    }

    fn transition(
        &self,
        ctx: Ctx<'_>,
        state: &SState,
        _round: Round,
        received: &[(ProcessId, SMsg)],
        _tape: &mut TapeReader<'_>,
    ) -> SState {
        let mut next = state.clone();
        next.process_messages_from(ctx.m(), ctx.id, received.iter().map(|(_, msg)| msg));
        next
    }

    fn output(&self, _ctx: Ctx<'_>, state: &SState) -> bool {
        match state.token {
            Some(rfire) => state.count >= 1 && (state.count + self.slack) as f64 >= rfire,
            None => false,
        }
    }

    fn sliced_spec(&self) -> Option<ca_core::SlicedSpec> {
        // Protocol S is exactly the counting automaton with the randomized
        // firing rule: the leader's init draws `rfire = offset + t · u` from
        // its first 64 tape bits and nothing else touches the tape, matching
        // the spec's contract bit for bit.
        Some(ca_core::SlicedSpec::RandomFire {
            offset: self.rfire_offset(),
            t: self.t(),
            slack: self.slack,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_core::exec::execute;
    use ca_core::graph::Graph;
    use ca_core::level::modified_levels;
    use ca_core::outcome::Outcome;
    use ca_core::run::Run;
    use ca_core::tape::TapeSet;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    fn tapes(rng: &mut StdRng, m: usize) -> TapeSet {
        TapeSet::random(rng, m, 64)
    }

    #[test]
    #[should_panic(expected = "epsilon must be in (0, 1]")]
    fn rejects_bad_epsilon() {
        ProtocolS::new(0.0);
    }

    #[test]
    fn accessors() {
        let s = ProtocolS::new(0.25);
        assert_eq!(s.epsilon(), 0.25);
        assert_eq!(s.t(), 4.0);
        assert_eq!(s.name(), "S");
        assert_eq!(s.tape_bits(), 64);
    }

    #[test]
    fn validity_no_input_no_attack() {
        // Theorem 6.5 on concrete executions: deliver everything but no input.
        let g = Graph::complete(3).unwrap();
        let run = Run::good_with_inputs(&g, 5, &[]);
        let proto = ProtocolS::new(0.5);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let ex = execute(&proto, &g, &run, &tapes(&mut rng, 3));
            assert_eq!(ex.outcome(), Outcome::NoAttack);
        }
    }

    #[test]
    fn lemma_6_4_count_equals_modified_level() {
        // count_i^r == ML_i^r(R) on random runs, every process, every round.
        let g = Graph::complete(3).unwrap();
        let proto = ProtocolS::new(0.25);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..40 {
            let mut run = Run::good(&g, 4);
            for i in g.vertices() {
                if rng.gen_bool(0.4) {
                    run.remove_input(i);
                }
            }
            let slots: Vec<_> = run.messages().collect();
            for s in slots {
                if rng.gen_bool(0.45) {
                    run.remove_message(s.from, s.to, s.round);
                }
            }
            let ml = modified_levels(&run);
            let ex = execute(&proto, &g, &run, &tapes(&mut rng, 3));
            for i in g.vertices() {
                for r in 0..=4u32 {
                    assert_eq!(
                        ex.local(i).states[r as usize].count,
                        ml.level_at(i, Round::new(r)),
                        "count != ML at {i} round {r} in {run:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn good_run_with_large_epsilon_always_attacks() {
        // ε = 1 ⟹ t = 1 ⟹ rfire ∈ (0,1] ⟹ attack as soon as ML ≥ 1.
        let g = Graph::complete(2).unwrap();
        let run = Run::good(&g, 3);
        let proto = ProtocolS::new(1.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let ex = execute(&proto, &g, &run, &tapes(&mut rng, 2));
            assert_eq!(ex.outcome(), Outcome::TotalAttack);
        }
    }

    #[test]
    fn liveness_matches_ml_threshold() {
        // On the good run over 2 processes with N rounds, ML(R) = N, so
        // Pr[TA] should be ~ min(1, ε·N). With ε = 1/8, N = 4: 1/2.
        let g = Graph::complete(2).unwrap();
        let run = Run::good(&g, 4);
        let proto = ProtocolS::new(1.0 / 8.0);
        let mut rng = StdRng::seed_from_u64(4);
        let trials = 4000;
        let (mut ta, mut pa) = (0, 0);
        for _ in 0..trials {
            let ex = execute(&proto, &g, &run, &tapes(&mut rng, 2));
            match ex.outcome() {
                Outcome::TotalAttack => ta += 1,
                // Even on the good run the counts leapfrog (Maxcount =
                // Mincount + 1), so rfire ∈ (Mincount, Maxcount] splits the
                // processes with probability exactly ε.
                Outcome::PartialAttack => pa += 1,
                Outcome::NoAttack => {}
            }
        }
        let ta_rate = ta as f64 / trials as f64;
        let pa_rate = pa as f64 / trials as f64;
        assert!(
            (ta_rate - 0.5).abs() < 0.03,
            "TA rate {ta_rate} should be ≈ 0.5"
        );
        assert!(
            (pa_rate - 1.0 / 8.0).abs() < 0.03,
            "PA rate {pa_rate} should be ≈ ε = 1/8"
        );
    }

    #[test]
    fn cut_run_disagreement_is_rare() {
        // Theorem 6.7: Pr[PA|R] ≤ ε for the worst prefix cut we can pick.
        let g = Graph::complete(2).unwrap();
        let proto = ProtocolS::new(1.0 / 4.0);
        let mut rng = StdRng::seed_from_u64(5);
        for cut in 1..=5u32 {
            let mut run = Run::good(&g, 5);
            run.cut_from_round(Round::new(cut));
            let trials = 2000;
            let mut pa = 0;
            for _ in 0..trials {
                let ex = execute(&proto, &g, &run, &tapes(&mut rng, 2));
                if ex.outcome() == Outcome::PartialAttack {
                    pa += 1;
                }
            }
            let rate = pa as f64 / trials as f64;
            assert!(rate <= 0.25 + 0.03, "PA rate {rate} exceeds ε at cut {cut}");
        }
    }

    #[test]
    fn no_token_never_attacks() {
        // Cut the leader off entirely: followers cannot hear rfire and must
        // never attack, whatever their validity.
        let g = Graph::complete(3).unwrap();
        let mut run = Run::good(&g, 4);
        for r in 1..=4u32 {
            run.remove_message(p(0), p(1), Round::new(r));
            run.remove_message(p(0), p(2), Round::new(r));
        }
        let proto = ProtocolS::new(0.9);
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..30 {
            let ex = execute(&proto, &g, &run, &tapes(&mut rng, 3));
            assert!(!ex.local(p(1)).output);
            assert!(!ex.local(p(2)).output);
        }
    }

    #[test]
    fn lemma_6_6_mincount_brackets_the_outcome() {
        // Fix rfire via the tape; Lemma 6.6: Mincount ≥ rfire ⟹ TA, and
        // Mincount < rfire − 1 ⟹ NA. (The unit gap in between is where PA
        // can live.)
        use ca_core::tape::BitTape;
        let g = Graph::complete(2).unwrap();
        let t = 8.0f64;
        let proto = ProtocolS::new(1.0 / t);
        for cut in 1..=7u32 {
            let mut run = Run::good(&g, 7);
            run.cut_from_round(Round::new(cut));
            // rfire = t·(k+1)/2^64 ≈ chosen value: pick words giving rfire
            // near 2.5 and near 6.5 via k = round(r/t·2^64) − 1.
            for target in [2.5f64, 4.5, 6.5] {
                let k = ((target / t) * (2f64.powi(64))) as u64 - 1;
                let tapes = TapeSet::from_tapes(vec![
                    BitTape::from_words(vec![k]),
                    BitTape::from_words(vec![0]),
                ]);
                let ex = execute(&proto, &g, &run, &tapes);
                let mincount = (0..2)
                    .map(|i| ex.local(p(i)).states.last().unwrap().count)
                    .min()
                    .unwrap() as f64;
                if mincount >= target {
                    assert_eq!(
                        ex.outcome(),
                        Outcome::TotalAttack,
                        "cut={cut}, rfire≈{target}"
                    );
                } else if mincount < target - 1.0 {
                    assert_eq!(ex.outcome(), Outcome::NoAttack, "cut={cut}, rfire≈{target}");
                }
            }
        }
    }

    #[test]
    fn message_validity_variant_never_attacks_without_messages() {
        // Footnote 1's alternative condition, satisfied surely: with inputs
        // delivered but every message destroyed, nobody attacks — whereas
        // the input-based variant's leader attacks with probability ε.
        let g = Graph::complete(2).unwrap();
        let run = {
            let mut r = Run::good(&g, 6);
            r.cut_from_round(Round::new(1));
            r
        };
        let msg_valid = ProtocolS::with_message_validity(0.5);
        assert_eq!(msg_valid.validity(), super::ValidityMode::MessageBased);
        let input_valid = ProtocolS::new(0.5);
        let mut rng = StdRng::seed_from_u64(12);
        let trials = 1200;
        let mut input_based_attacks = 0;
        for _ in 0..trials {
            let t = tapes(&mut rng, 2);
            let a = execute(&msg_valid, &g, &run, &t);
            assert_eq!(
                a.outcome(),
                Outcome::NoAttack,
                "message-based validity is sure"
            );
            let b = execute(&input_valid, &g, &run, &t);
            if b.local(p(0)).output {
                input_based_attacks += 1;
            }
        }
        let rate = input_based_attacks as f64 / trials as f64;
        assert!(
            (rate - 0.5).abs() < 0.05,
            "input-based leader attacks alone with probability ε: {rate}"
        );
    }

    #[test]
    fn message_validity_costs_one_count_level_of_liveness() {
        // L(S_msg, R) = min(1, ε·(ML(R) − 1)) — one level pays for the
        // stronger validity. Good run, ML = N = 6, ε = 1/4: 5/4 → 1 vs the
        // cut-at-4 run with ML = 3: (3−1)/4 = 1/2.
        let g = Graph::complete(2).unwrap();
        let proto = ProtocolS::with_message_validity(0.25);
        let mut run = Run::good(&g, 6);
        run.cut_from_round(Round::new(4));
        let mut rng = StdRng::seed_from_u64(13);
        let trials = 3000;
        let mut ta = 0;
        for _ in 0..trials {
            let t = tapes(&mut rng, 2);
            if execute(&proto, &g, &run, &t).outcome() == Outcome::TotalAttack {
                ta += 1;
            }
        }
        let rate = ta as f64 / trials as f64;
        assert!(
            (rate - 0.5).abs() < 0.04,
            "liveness ≈ ε(ML−1) = 1/2: {rate}"
        );
    }

    #[test]
    fn deterministic_given_tape() {
        let g = Graph::complete(3).unwrap();
        let run = Run::good(&g, 3);
        let proto = ProtocolS::new(0.3);
        let mut rng = StdRng::seed_from_u64(7);
        let t = tapes(&mut rng, 3);
        let a = execute(&proto, &g, &run, &t);
        let b = execute(&proto, &g, &run, &t);
        for i in g.vertices() {
            assert!(a.identical_to(&b, i));
        }
    }

    #[test]
    fn sliced_spec_mirrors_the_output_rule() {
        use ca_core::SlicedSpec;
        assert_eq!(
            ProtocolS::new(0.25).sliced_spec(),
            Some(SlicedSpec::RandomFire {
                offset: 0.0,
                t: 4.0,
                slack: 0
            })
        );
        assert_eq!(
            ProtocolS::with_message_validity(0.25).sliced_spec(),
            Some(SlicedSpec::RandomFire {
                offset: 1.0,
                t: 4.0,
                slack: 0
            }),
            "message-based validity shifts the firing range by 1"
        );
        assert_eq!(
            ProtocolS::eager(0.25).sliced_spec(),
            Some(SlicedSpec::RandomFire {
                offset: 0.0,
                t: 4.0,
                slack: 1
            }),
            "the eager variant carries its decision slack"
        );
    }
}
