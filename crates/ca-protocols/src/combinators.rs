//! Protocol combinators: running independent copies side by side.
//!
//! Section 3 raises the natural idea of beating Protocol A's `1/N` unsafety
//! "by running A several times", and the lower bound of Section 5 says no
//! combination rule can work. [`Repeat`] makes that testable: it runs `k`
//! independent copies of any protocol in parallel (independent coins, shared
//! run) and combines the copies' decisions with a [`CombineRule`]. The
//! experiments show every rule either pushes liveness below 1 or pushes
//! unsafety above `1/N` — exactly the tradeoff `L/U ≤ N` of Theorem 5.4.

use ca_core::ids::{ProcessId, Round};
use ca_core::protocol::{Ctx, Protocol};
use ca_core::tape::TapeReader;
use serde::{Deserialize, Serialize};

/// How to combine the attack decisions of the `k` copies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CombineRule {
    /// Attack iff **every** copy attacks.
    All,
    /// Attack iff **some** copy attacks.
    Any,
    /// Attack iff **more than half** of the copies attack.
    Majority,
}

impl CombineRule {
    /// Applies the rule to the copies' decisions.
    pub fn combine(self, decisions: &[bool]) -> bool {
        let yes = decisions.iter().filter(|&&d| d).count();
        match self {
            CombineRule::All => yes == decisions.len(),
            CombineRule::Any => yes > 0,
            CombineRule::Majority => 2 * yes > decisions.len(),
        }
    }
}

/// `k` independent copies of a protocol, combined by a [`CombineRule`].
#[derive(Clone, Debug, PartialEq)]
pub struct Repeat<P> {
    inner: P,
    k: usize,
    rule: CombineRule,
}

impl<P: Protocol> Repeat<P> {
    /// Creates the repeated protocol.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(inner: P, k: usize, rule: CombineRule) -> Self {
        assert!(k > 0, "repeat count must be positive");
        Repeat { inner, k, rule }
    }

    /// The inner protocol.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Number of copies.
    pub fn copies(&self) -> usize {
        self.k
    }

    /// The combination rule.
    pub fn rule(&self) -> CombineRule {
        self.rule
    }
}

impl<P: Protocol> Protocol for Repeat<P> {
    type State = Vec<P::State>;
    type Msg = Vec<P::Msg>;

    fn name(&self) -> &'static str {
        "repeat"
    }

    fn tape_bits(&self) -> usize {
        self.inner.tape_bits() * self.k
    }

    fn init(&self, ctx: Ctx<'_>, received_input: bool, tape: &mut TapeReader<'_>) -> Self::State {
        (0..self.k)
            .map(|_| self.inner.init(ctx, received_input, tape))
            .collect()
    }

    fn message(&self, ctx: Ctx<'_>, state: &Self::State, to: ProcessId) -> Self::Msg {
        state
            .iter()
            .map(|s| self.inner.message(ctx, s, to))
            .collect()
    }

    fn transition(
        &self,
        ctx: Ctx<'_>,
        state: &Self::State,
        round: Round,
        received: &[(ProcessId, Self::Msg)],
        tape: &mut TapeReader<'_>,
    ) -> Self::State {
        (0..self.k)
            .map(|c| {
                let per_copy: Vec<(ProcessId, P::Msg)> = received
                    .iter()
                    .map(|(from, bundle)| (*from, bundle[c].clone()))
                    .collect();
                self.inner
                    .transition(ctx, &state[c], round, &per_copy, tape)
            })
            .collect()
    }

    fn output(&self, ctx: Ctx<'_>, state: &Self::State) -> bool {
        let decisions: Vec<bool> = state.iter().map(|s| self.inner.output(ctx, s)).collect();
        self.rule.combine(&decisions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol_a::ProtocolA;
    use ca_core::exec::execute;
    use ca_core::graph::Graph;
    use ca_core::outcome::Outcome;
    use ca_core::run::Run;
    use ca_core::tape::TapeSet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn combine_rules() {
        assert!(CombineRule::All.combine(&[true, true]));
        assert!(!CombineRule::All.combine(&[true, false]));
        assert!(CombineRule::Any.combine(&[false, true]));
        assert!(!CombineRule::Any.combine(&[false, false]));
        assert!(CombineRule::Majority.combine(&[true, true, false]));
        assert!(!CombineRule::Majority.combine(&[true, false]));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_copies_rejected() {
        Repeat::new(ProtocolA::new(4), 0, CombineRule::All);
    }

    #[test]
    fn repeated_a_lives_on_good_run() {
        let n = 6u32;
        let proto = Repeat::new(ProtocolA::new(n), 3, CombineRule::All);
        let g = Graph::complete(2).unwrap();
        let run = Run::good(&g, n);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let t = TapeSet::random(&mut rng, 2, proto.tape_bits());
            let ex = execute(&proto, &g, &run, &t);
            assert_eq!(ex.outcome(), Outcome::TotalAttack);
        }
    }

    #[test]
    fn repeating_a_does_not_reduce_unsafety() {
        // Section 3's strawman: k copies of A with the ALL rule. The cut at
        // round N splits the processes iff *some* copy has rfire = N, which
        // has probability 1 - (1 - 1/(N-1))^k > 1/(N-1): repetition makes
        // unsafety WORSE, not better.
        let n = 6u32;
        let k = 3;
        let proto = Repeat::new(ProtocolA::new(n), k, CombineRule::All);
        let g = Graph::complete(2).unwrap();
        let mut run = Run::good(&g, n);
        run.cut_from_round(Round::new(n));
        let mut rng = StdRng::seed_from_u64(2);
        let trials = 4000;
        let mut pa = 0;
        for _ in 0..trials {
            let t = TapeSet::random(&mut rng, 2, proto.tape_bits());
            let ex = execute(&proto, &g, &run, &t);
            if ex.outcome() == Outcome::PartialAttack {
                pa += 1;
            }
        }
        let rate = pa as f64 / trials as f64;
        let single = 1.0 / (n as f64 - 1.0);
        let expect = 1.0 - (1.0 - single).powi(k as i32);
        assert!(
            (rate - expect).abs() < 0.03,
            "PA rate {rate}, expected ≈ {expect}"
        );
        assert!(rate > single, "repetition must not beat a single copy");
    }

    #[test]
    fn accessors() {
        let proto = Repeat::new(ProtocolA::new(4), 2, CombineRule::Majority);
        assert_eq!(proto.copies(), 2);
        assert_eq!(proto.rule(), CombineRule::Majority);
        assert_eq!(proto.inner().horizon(), 4);
        assert_eq!(proto.tape_bits(), 2 * 64 * 64);
    }
}
