//! The level-counting automaton of Protocol S (Figure 1 of the paper).
//!
//! Protocol S's central mechanism is a distributed counter: each process `i`
//! maintains `count_i`, which Lemma 6.4 proves equals the modified level
//! `ML_i^r(R)` at every round. The same automaton, minus the randomized
//! firing threshold, is reused by the deterministic threshold baseline for
//! the weak adversary, so it lives here as a generic component.
//!
//! The automaton is generic over a *token* `T` carried from the leader: in
//! Protocol S the token is the value of `rfire`; in the threshold baseline it
//! is `()`. A process holds the token iff the leader's round-0 state has
//! flowed to it (the paper's condition "(1, 0) flows to (i, r)"), because the
//! leader attaches the token to every message and every process forwards it.

use ca_core::bitset::BitSet;
use ca_core::ids::ProcessId;
use serde::{Deserialize, Serialize};

/// Counting state: the variables of Figure 1.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CountingState<T> {
    /// `count_i`: counts `ML_i^r(R)` in the current run.
    pub count: u32,
    /// `seen_i`: processes known to have reached `count_i`.
    pub seen: BitSet,
    /// `valid_i`: whether the input has flowed to this process.
    pub valid: bool,
    /// The leader's token (`rfire_i` in Protocol S); `None` is the paper's
    /// `undefined`.
    pub token: Option<T>,
}

/// The counting fields carried on every message.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CountingMsg<T> {
    /// Sender's `count`.
    pub count: u32,
    /// Sender's `seen`.
    pub seen: BitSet,
    /// Sender's `valid`.
    pub valid: bool,
    /// Sender's token.
    pub token: Option<T>,
}

impl<T: Clone> CountingState<T> {
    /// The initial state: the leader starts with the token; a process whose
    /// input arrived starts valid. `count_1 = 1` iff `valid_1` (the leader
    /// both has the token and heard the input); everyone else starts at 0.
    pub fn initial(m: usize, id: ProcessId, received_input: bool, token: Option<T>) -> Self {
        let mut state = CountingState {
            count: 0,
            seen: BitSet::new(m),
            valid: received_input,
            token,
        };
        if state.valid && state.token.is_some() {
            state.count = 1;
            state.seen.insert(id.index());
        }
        state
    }

    /// The message this process attaches to everything it sends
    /// (`σ_i`: the full counting state).
    pub fn to_msg(&self) -> CountingMsg<T> {
        CountingMsg {
            count: self.count,
            seen: self.seen.clone(),
            valid: self.valid,
            token: self.token.clone(),
        }
    }

    /// `PROCESS-MESSAGE(S_i, i)` from Figure 1, applied at the end of a round.
    ///
    /// `m` is the total number of processes (`|V|`); `id` is this process.
    pub fn process_messages(&mut self, m: usize, id: ProcessId, received: &[CountingMsg<T>]) {
        self.process_messages_from(m, id, received.iter());
    }

    /// [`Self::process_messages`] over borrowed messages: protocols hand the
    /// engine's `(sender, msg)` inbox straight in without collecting the
    /// messages into an owned `Vec` first. The iterator must be cloneable —
    /// the merge makes several passes.
    pub fn process_messages_from<'a>(
        &mut self,
        m: usize,
        id: ProcessId,
        received: impl Iterator<Item = &'a CountingMsg<T>> + Clone,
    ) where
        T: 'a,
    {
        debug_assert_eq!(self.seen.capacity(), m, "seen must span all of V");
        // Line 1: adopt the token from any message that carries one.
        if self.token.is_none() {
            if let Some(msg) = received.clone().find(|msg| msg.token.is_some()) {
                self.token = msg.token.clone();
            }
        }
        // Line 2: adopt validity.
        if !self.valid && received.clone().any(|msg| msg.valid) {
            self.valid = true;
        }
        // Line 3: start counting.
        if self.valid && self.token.is_some() && self.count == 0 {
            self.count = 1;
            self.seen.clear();
            self.seen.insert(id.index());
        }
        // Main block: merge counts and seen-sets. Adopting a strictly higher
        // count is "clear then union", so the merge works directly on
        // `self.seen` with no scratch set.
        if self.count >= 1 {
            let Some(highcount) = received.clone().map(|msg| msg.count).max() else {
                return;
            };
            if highcount > self.count {
                self.seen.clear();
                self.count = highcount;
            }
            if highcount == self.count {
                for msg in received.filter(|msg| msg.count == highcount) {
                    self.seen.union_with(&msg.seen);
                }
                self.seen.insert(id.index());
            }
            if self.seen.is_full() {
                self.count += 1;
                self.seen.clear();
                self.seen.insert(id.index());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    fn msg_of(state: &CountingState<u8>) -> CountingMsg<u8> {
        state.to_msg()
    }

    #[test]
    fn leader_with_input_starts_at_one() {
        let s = CountingState::initial(3, p(0), true, Some(7u8));
        assert_eq!(s.count, 1);
        assert!(s.seen.contains(0));
        assert_eq!(s.seen.len(), 1);
    }

    #[test]
    fn leader_without_input_starts_at_zero() {
        let s = CountingState::<u8>::initial(3, p(0), false, Some(7));
        assert_eq!(s.count, 0);
        assert!(s.seen.is_empty());
    }

    #[test]
    fn follower_never_starts_counting_alone() {
        let s = CountingState::<u8>::initial(3, p(1), true, None);
        assert_eq!(s.count, 0, "valid but no token");
    }

    #[test]
    fn token_and_validity_adoption() {
        let leader = CountingState::initial(2, p(0), true, Some(9u8));
        let mut follower = CountingState::<u8>::initial(2, p(1), false, None);
        follower.process_messages(2, p(1), &[msg_of(&leader)]);
        assert_eq!(follower.token, Some(9));
        assert!(follower.valid);
        assert!(follower.count >= 1, "starts counting after hearing leader");
    }

    #[test]
    fn two_process_counts_leapfrog_and_min_tracks_round() {
        // Full bidirectional exchange every round. Hand-tracing Figure 1 (and
        // the ML definition): the two counts leapfrog — the leader bumps on
        // even rounds, the follower on odd rounds — and min(counts) at the
        // end of round r is exactly r, i.e. ML(R) = N on the good run.
        let mut a = CountingState::initial(2, p(0), true, Some(1u8));
        let mut b = CountingState::<u8>::initial(2, p(1), true, None);
        assert_eq!((a.count, b.count), (1, 0));
        for round in 1..=6u32 {
            let (ma, mb) = (msg_of(&a), msg_of(&b));
            a.process_messages(2, p(0), &[mb]);
            b.process_messages(2, p(1), &[ma]);
            let expect_a = if round % 2 == 1 { round } else { round + 1 };
            let expect_b = if round % 2 == 1 { round + 1 } else { round };
            assert_eq!(a.count, expect_a, "leader at round {round}");
            assert_eq!(b.count, expect_b, "follower at round {round}");
            assert_eq!(a.count.min(b.count), round, "Mincount = round");
        }
    }

    #[test]
    fn seen_never_full_after_processing() {
        // Invariant 7 of Lemma 6.3: seen_i ≠ V (the bump fires immediately).
        let mut a = CountingState::initial(2, p(0), true, Some(1u8));
        let b = CountingState::<u8>::initial(2, p(1), true, None);
        for _ in 0..4 {
            let mb = msg_of(&b);
            a.process_messages(2, p(0), &[mb]);
            assert!(!a.seen.is_full());
            assert!(
                a.count == 0 || a.seen.contains(0),
                "i ∈ seen_i when counting"
            );
        }
    }

    #[test]
    fn catch_up_to_higher_count() {
        // A process two levels behind adopts the higher count directly.
        let mut behind = CountingState::initial(3, p(2), true, Some(1u8));
        let ahead = CountingMsg {
            count: 5,
            seen: BitSet::from_iter_with_capacity(3, [0, 1]),
            valid: true,
            token: Some(1u8),
        };
        behind.process_messages(3, p(2), &[ahead]);
        // Adopts count 5, seen = {0,1} ∪ {2} = V → bump to 6, seen = {2}.
        assert_eq!(behind.count, 6);
        assert_eq!(behind.seen.iter().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn no_messages_no_change() {
        let mut s = CountingState::initial(2, p(0), true, Some(3u8));
        let before = s.clone();
        s.process_messages(2, p(0), &[]);
        assert_eq!(s, before);
    }

    #[test]
    fn stale_lower_counts_are_ignored() {
        let mut s = CountingState::initial(3, p(0), true, Some(3u8));
        s.count = 4;
        s.seen = BitSet::from_iter_with_capacity(3, [0]);
        let stale = CountingMsg {
            count: 2,
            seen: BitSet::from_iter_with_capacity(3, [1, 2]),
            valid: true,
            token: Some(3u8),
        };
        s.process_messages(3, p(0), &[stale]);
        assert_eq!(s.count, 4);
        assert_eq!(s.seen.iter().collect::<Vec<_>>(), vec![0]);
    }
}
