//! Protocols for the **weak adversary** study (Section 8).
//!
//! The paper closes by noting that against a *probabilistic* adversary —
//! each message destroyed independently with unknown probability `p` — there
//! are "preliminary results that show vastly improved performance". Those
//! results never appeared, so this module provides the natural candidates the
//! experiments compare:
//!
//! * Protocol S itself (its `U_s ≤ ε` guarantee is worst-case, so it holds a
//!   fortiori; its liveness grows with `ML(R)`, which under random drops
//!   grows linearly in `N`).
//! * [`FixedThreshold`] — the same level-counting automaton with a
//!   *deterministic* firing threshold `θ` instead of a random `rfire`.
//!   Against a strong adversary this is hopeless (`U_s = 1`: the adversary
//!   cuts exactly at level `θ`), but against random drops the level spread is
//!   at most 1 (Lemma 6.2) and the counts race past `θ` quickly, so
//!   disagreement requires the run's minimum level to land exactly on
//!   `θ - 1` or `θ` — a single-point event whose probability shrinks as `N`
//!   grows. This is the "vastly improved performance" made concrete.

use crate::counting::{CountingMsg, CountingState};
use ca_core::ids::{ProcessId, Round};
use ca_core::protocol::{Ctx, Protocol};
use ca_core::tape::TapeReader;

/// The deterministic-threshold variant of the counting protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FixedThreshold {
    theta: u32,
}

/// State of a [`FixedThreshold`] process (counting automaton, unit token).
pub type ThresholdState = CountingState<()>;

/// Message of a [`FixedThreshold`] process.
pub type ThresholdMsg = CountingMsg<()>;

impl FixedThreshold {
    /// Creates the protocol with firing threshold `theta ≥ 1`: attack iff
    /// the counted level reaches `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `theta == 0` (every process with a token would attack
    /// unconditionally, violating validity).
    pub fn new(theta: u32) -> Self {
        assert!(theta >= 1, "threshold must be at least 1");
        FixedThreshold { theta }
    }

    /// The firing threshold `θ`.
    pub fn theta(&self) -> u32 {
        self.theta
    }
}

impl Protocol for FixedThreshold {
    type State = ThresholdState;
    type Msg = ThresholdMsg;

    fn name(&self) -> &'static str {
        "fixed-threshold"
    }

    fn tape_bits(&self) -> usize {
        0
    }

    fn init(
        &self,
        ctx: Ctx<'_>,
        received_input: bool,
        _tape: &mut TapeReader<'_>,
    ) -> ThresholdState {
        let token = if ctx.id == ProcessId::LEADER {
            Some(())
        } else {
            None
        };
        CountingState::initial(ctx.m(), ctx.id, received_input, token)
    }

    fn message(&self, _ctx: Ctx<'_>, state: &ThresholdState, _to: ProcessId) -> ThresholdMsg {
        state.to_msg()
    }

    fn transition(
        &self,
        ctx: Ctx<'_>,
        state: &ThresholdState,
        _round: Round,
        received: &[(ProcessId, ThresholdMsg)],
        _tape: &mut TapeReader<'_>,
    ) -> ThresholdState {
        let mut next = state.clone();
        next.process_messages_from(ctx.m(), ctx.id, received.iter().map(|(_, msg)| msg));
        next
    }

    fn output(&self, _ctx: Ctx<'_>, state: &ThresholdState) -> bool {
        state.token.is_some() && state.count >= self.theta
    }

    fn sliced_spec(&self) -> Option<ca_core::SlicedSpec> {
        // The counting automaton with a deterministic firing rule and no
        // tape bits: exactly the sliced engine's threshold shape.
        Some(ca_core::SlicedSpec::Threshold { theta: self.theta })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_core::exec::execute;
    use ca_core::graph::Graph;
    use ca_core::level::modified_levels;
    use ca_core::outcome::Outcome;
    use ca_core::run::Run;
    use ca_core::tape::TapeSet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tapes(m: usize) -> TapeSet {
        let mut rng = StdRng::seed_from_u64(1);
        TapeSet::random(&mut rng, m, 64)
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn rejects_zero_threshold() {
        FixedThreshold::new(0);
    }

    #[test]
    fn validity_holds() {
        let g = Graph::complete(3).unwrap();
        let run = Run::good_with_inputs(&g, 5, &[]);
        let ex = execute(&FixedThreshold::new(2), &g, &run, &tapes(3));
        assert_eq!(ex.outcome(), Outcome::NoAttack);
    }

    #[test]
    fn good_run_total_attack_when_threshold_reached() {
        // m = 2, N = 6: ML(R) = 6 ≥ θ = 3 for both processes.
        let g = Graph::complete(2).unwrap();
        let run = Run::good(&g, 6);
        let ex = execute(&FixedThreshold::new(3), &g, &run, &tapes(2));
        assert_eq!(ex.outcome(), Outcome::TotalAttack);
    }

    #[test]
    fn unreachable_threshold_means_no_attack() {
        let g = Graph::complete(2).unwrap();
        let run = Run::good(&g, 4);
        // Counts reach at most 5 (leader) / 4 — θ = 9 never fires.
        let ex = execute(&FixedThreshold::new(9), &g, &run, &tapes(2));
        assert_eq!(ex.outcome(), Outcome::NoAttack);
    }

    #[test]
    fn strong_adversary_splits_threshold_deterministically() {
        // U_s(FixedThreshold) = 1: cut exactly when the leader's count
        // reaches θ but the follower's lags at θ - 1. With the leapfrog
        // pattern (leader count = r+1 on even rounds), cutting from round
        // θ on a 2-clique does it whenever θ is odd.
        let theta = 3u32;
        let g = Graph::complete(2).unwrap();
        let mut run = Run::good(&g, 6);
        run.cut_from_round(Round::new(theta));
        let ex = execute(&FixedThreshold::new(theta), &g, &run, &tapes(2));
        assert_eq!(
            ex.outcome(),
            Outcome::PartialAttack,
            "adversary forces disagreement with certainty"
        );
    }

    #[test]
    fn counts_still_track_ml() {
        // The () token does not disturb the counting automaton.
        let g = Graph::ring(4).unwrap();
        let mut run = Run::good(&g, 5);
        run.remove_message(ProcessId::new(0), ProcessId::new(1), Round::new(2));
        run.remove_message(ProcessId::new(2), ProcessId::new(3), Round::new(4));
        let ml = modified_levels(&run);
        let ex = execute(&FixedThreshold::new(2), &g, &run, &tapes(4));
        for i in g.vertices() {
            assert_eq!(ex.local(i).states[5].count, ml.level(i));
        }
    }

    #[test]
    fn sliced_spec_is_the_threshold_rule() {
        assert_eq!(
            FixedThreshold::new(5).sliced_spec(),
            Some(ca_core::SlicedSpec::Threshold { theta: 5 })
        );
    }
}
