//! `GridS`: Protocol S with a discrete, exhaustively enumerable `rfire`.
//!
//! The paper draws `rfire` as a uniform *real* in `(0, 1/ε]` — an idealized
//! object. `GridS` replaces it with the uniform grid
//! `{(j+1)·(1/ε)/2^b : j = 0..2^b}`, drawn with exactly `b` tape bits. Two
//! consequences:
//!
//! * the entire probability space is `2^b` equally likely tapes, so outcome
//!   probabilities can be computed by **exhaustive enumeration of real
//!   executions** (`ca-analysis`'s `enumeration` module) — no analytic
//!   shortcut, no Monte Carlo error;
//! * the discretization changes each threshold comparison by at most one
//!   grid cell, so `U_s(GridS) ≤ ε + ε/2^b·…` converges to the ideal bound
//!   as `b` grows — quantified by the enumeration tests.
//!
//! Everything else (counting automaton, decision rule) is identical to
//! [`crate::ProtocolS`].

use crate::counting::{CountingMsg, CountingState};
use ca_core::ids::{ProcessId, Round};
use ca_core::protocol::{Ctx, Protocol};
use ca_core::tape::TapeReader;

/// Protocol S over a `2^b`-point firing grid.
#[derive(Clone, Debug, PartialEq)]
pub struct GridS {
    epsilon: f64,
    bits: u32,
}

/// State of a [`GridS`] process (identical to Protocol S's).
pub type GridSState = CountingState<f64>;

/// Message of a [`GridS`] process.
pub type GridSMsg = CountingMsg<f64>;

impl GridS {
    /// Creates the protocol with agreement parameter `epsilon` and a
    /// `2^bits`-point grid.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon ∉ (0, 1]` or `bits` is 0 or exceeds 32.
    pub fn new(epsilon: f64, bits: u32) -> Self {
        assert!(
            epsilon > 0.0 && epsilon <= 1.0,
            "epsilon must be in (0, 1], got {epsilon}"
        );
        assert!((1..=32).contains(&bits), "bits must be in 1..=32");
        GridS { epsilon, bits }
    }

    /// The agreement parameter `ε`.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Number of tape bits the leader consumes (`b`; grid size `2^b`).
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The `rfire` value for grid index `j ∈ 0..2^bits`.
    pub fn rfire_for(&self, j: u64) -> f64 {
        let k = 1u64 << self.bits;
        (1.0 / self.epsilon) * ((j + 1) as f64 / k as f64)
    }
}

impl Protocol for GridS {
    type State = GridSState;
    type Msg = GridSMsg;

    fn name(&self) -> &'static str {
        "grid-S"
    }

    fn tape_bits(&self) -> usize {
        self.bits as usize
    }

    fn init(&self, ctx: Ctx<'_>, received_input: bool, tape: &mut TapeReader<'_>) -> GridSState {
        let token = if ctx.id == ProcessId::LEADER {
            Some(self.rfire_for(tape.draw_bits(self.bits)))
        } else {
            None
        };
        CountingState::initial(ctx.m(), ctx.id, received_input, token)
    }

    fn message(&self, _ctx: Ctx<'_>, state: &GridSState, _to: ProcessId) -> GridSMsg {
        state.to_msg()
    }

    fn transition(
        &self,
        ctx: Ctx<'_>,
        state: &GridSState,
        _round: Round,
        received: &[(ProcessId, GridSMsg)],
        _tape: &mut TapeReader<'_>,
    ) -> GridSState {
        let mut next = state.clone();
        next.process_messages_from(ctx.m(), ctx.id, received.iter().map(|(_, msg)| msg));
        next
    }

    fn output(&self, _ctx: Ctx<'_>, state: &GridSState) -> bool {
        match state.token {
            Some(rfire) => state.count as f64 >= rfire,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_core::exec::execute;
    use ca_core::graph::Graph;
    use ca_core::outcome::Outcome;
    use ca_core::run::Run;
    use ca_core::tape::{BitTape, TapeSet};

    #[test]
    fn grid_points_cover_the_interval() {
        let g = GridS::new(0.25, 3); // t = 4, 8 points
        assert_eq!(g.rfire_for(0), 0.5);
        assert_eq!(g.rfire_for(7), 4.0);
        assert!(g.rfire_for(0) > 0.0);
        assert_eq!(g.bits(), 3);
        assert_eq!(g.epsilon(), 0.25);
    }

    #[test]
    fn enumerable_outcomes_on_good_run() {
        // t = 4, b = 2 → rfire ∈ {1, 2, 3, 4}. Good run N = 2 on K2:
        // counts (3, 2): attack iff rfire ≤ count. TA iff rfire ≤ 2 (2/4),
        // PA iff rfire = 3 (1/4), NA iff rfire = 4 (1/4).
        let proto = GridS::new(0.25, 2);
        let graph = Graph::complete(2).unwrap();
        let run = Run::good(&graph, 2);
        let mut tallies = [0u32; 3];
        for j in 0..4u64 {
            let tapes = TapeSet::from_tapes(vec![
                BitTape::from_words(vec![j]),
                BitTape::from_words(vec![0]),
            ]);
            let ex = execute(&proto, &graph, &run, &tapes);
            match ex.outcome() {
                Outcome::TotalAttack => tallies[0] += 1,
                Outcome::PartialAttack => tallies[1] += 1,
                Outcome::NoAttack => tallies[2] += 1,
            }
        }
        assert_eq!(tallies, [2, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "bits must be in 1..=32")]
    fn rejects_zero_bits() {
        GridS::new(0.5, 0);
    }
}
