//! `VectorS`: the uncompressed ablation of Protocol S.
//!
//! Protocol S compresses each process's knowledge into `(count, seen)` — a
//! counter plus one bit per process (Figure 1). The obvious alternative is
//! to gossip the *full vector* of per-process levels ("the highest level I
//! know each of you has reached") and recompute the modified level locally.
//! Behaviorally the two are identical — both compute `ML_i^r(R)` exactly and
//! fire on the same `rfire` — but the vector variant sends `Θ(m)` words per
//! message where S sends `Θ(m)` *bits*.
//!
//! This module exists as a designed-in ablation: the equivalence is proved
//! by tests (same outputs on the same tapes and runs), and the bandwidth
//! bench (`ca-bench/benches/ablation.rs`) quantifies what Figure 1's
//! compression buys.

use ca_core::ids::{ProcessId, Round};
use ca_core::protocol::{Ctx, Protocol};
use ca_core::tape::TapeReader;
use serde::{Deserialize, Serialize};

/// The uncompressed full-vector variant of Protocol S.
#[derive(Clone, Debug, PartialEq)]
pub struct VectorS {
    epsilon: f64,
}

/// State: the gossip vector plus the Protocol S decision inputs.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct VectorState {
    /// `heard[k]` = highest level of process `k` whose attainment has flowed
    /// here (own entry = own level).
    pub heard: Vec<u32>,
    /// Whether the input has flowed here.
    pub valid: bool,
    /// Whether the leader's round-0 state (and thus `rfire`) has flowed here.
    pub rfire: Option<f64>,
}

/// Message: the entire state (full-information gossip).
pub type VectorMsg = VectorState;

impl VectorS {
    /// Creates the ablation protocol with agreement parameter `epsilon`.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not in `(0, 1]`.
    pub fn new(epsilon: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon <= 1.0,
            "epsilon must be in (0, 1], got {epsilon}"
        );
        VectorS { epsilon }
    }

    /// The agreement parameter `ε`.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Recomputes this process's own level from the base condition and the
    /// heard vector (the `h > 1` clause of the ML definition).
    fn settle(state: &mut VectorState, id: ProcessId) {
        let me = id.index();
        if state.valid && state.rfire.is_some() && state.heard[me] == 0 {
            state.heard[me] = 1;
        }
        let min_other = state
            .heard
            .iter()
            .enumerate()
            .filter(|(k, _)| *k != me)
            .map(|(_, &v)| v)
            .min()
            .expect("m >= 2");
        if min_other >= 1 && min_other + 1 > state.heard[me] {
            state.heard[me] = min_other + 1;
        }
    }
}

impl Protocol for VectorS {
    type State = VectorState;
    type Msg = VectorMsg;

    fn name(&self) -> &'static str {
        "vector-S"
    }

    fn tape_bits(&self) -> usize {
        64
    }

    fn init(&self, ctx: Ctx<'_>, received_input: bool, tape: &mut TapeReader<'_>) -> VectorState {
        let rfire = if ctx.id == ProcessId::LEADER {
            Some((1.0 / self.epsilon) * tape.draw_unit())
        } else {
            None
        };
        let mut state = VectorState {
            heard: vec![0; ctx.m()],
            valid: received_input,
            rfire,
        };
        if state.valid && state.rfire.is_some() {
            state.heard[ctx.id.index()] = 1;
        }
        state
    }

    fn message(&self, _ctx: Ctx<'_>, state: &VectorState, _to: ProcessId) -> VectorMsg {
        state.clone()
    }

    fn transition(
        &self,
        ctx: Ctx<'_>,
        state: &VectorState,
        _round: Round,
        received: &[(ProcessId, VectorMsg)],
        _tape: &mut TapeReader<'_>,
    ) -> VectorState {
        let mut next = state.clone();
        for (_, msg) in received {
            for (mine, theirs) in next.heard.iter_mut().zip(&msg.heard) {
                *mine = (*mine).max(*theirs);
            }
            next.valid |= msg.valid;
            if next.rfire.is_none() {
                next.rfire = msg.rfire;
            }
        }
        Self::settle(&mut next, ctx.id);
        next
    }

    fn output(&self, ctx: Ctx<'_>, state: &VectorState) -> bool {
        match state.rfire {
            Some(rfire) => state.heard[ctx.id.index()] as f64 >= rfire,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProtocolS;
    use ca_core::exec::execute;
    use ca_core::graph::Graph;
    use ca_core::level::modified_levels;
    use ca_core::run::Run;
    use ca_core::tape::TapeSet;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn vector_level_tracks_ml() {
        let g = Graph::ring(4).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let proto = VectorS::new(0.25);
        for _ in 0..30 {
            let mut run = Run::good(&g, 5);
            let slots: Vec<_> = run.messages().collect();
            for s in slots {
                if rng.gen_bool(0.4) {
                    run.remove_message(s.from, s.to, s.round);
                }
            }
            let tapes = TapeSet::random(&mut rng, 4, 64);
            let ex = execute(&proto, &g, &run, &tapes);
            let ml = modified_levels(&run);
            for i in g.vertices() {
                assert_eq!(
                    ex.local(i).states[5].heard[i.index()],
                    ml.level(i),
                    "vector level != ML at {i} in {run:?}"
                );
            }
        }
    }

    #[test]
    fn equivalent_to_protocol_s_on_same_tapes() {
        // Same ε, same tapes (so the same rfire), same runs ⟹ identical
        // output vectors: the compression is lossless.
        let g = Graph::complete(3).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let s = ProtocolS::new(0.2);
        let v = VectorS::new(0.2);
        for _ in 0..50 {
            let mut run = Run::good(&g, 4);
            for i in g.vertices() {
                if rng.gen_bool(0.3) {
                    run.remove_input(i);
                }
            }
            let slots: Vec<_> = run.messages().collect();
            for slot in slots {
                if rng.gen_bool(0.45) {
                    run.remove_message(slot.from, slot.to, slot.round);
                }
            }
            let tapes = TapeSet::random(&mut rng, 3, 64);
            let out_s = execute(&s, &g, &run, &tapes).outputs();
            let out_v = execute(&v, &g, &run, &tapes).outputs();
            assert_eq!(out_s, out_v, "ablation diverged on {run:?}");
        }
    }

    #[test]
    #[should_panic(expected = "epsilon must be in (0, 1]")]
    fn rejects_bad_epsilon() {
        VectorS::new(2.0);
    }
}
