//! Coordinated-attack protocols.
//!
//! Every protocol the paper describes, plus the baselines its arguments
//! compare against:
//!
//! * [`protocol_s::ProtocolS`] — the optimal protocol against a strong
//!   adversary (Section 6): randomized firing level, `U_s ≤ ε`,
//!   `L(S,R) ≥ min(1, ε·ML(R))`.
//! * [`protocol_a::ProtocolA`] — the simple two-general example (Section 3):
//!   `U_s ≈ 1/N`, liveness 1 on the good run but 0 once the chain breaks.
//! * [`counting`] — the level-counting automaton of Figure 1, shared by
//!   Protocol S and the threshold baseline.
//! * [`deterministic::DeterministicFlood`] — a deterministic baseline
//!   realizing the classic impossibility (`U_s = 1`).
//! * [`trivial`] — the degenerate corners (`never`, `attack-on-input`).
//! * [`combinators::Repeat`] — run `k` independent copies of a protocol
//!   (Section 3's "just run A several times" strawman).
//! * [`weak::FixedThreshold`] — deterministic threshold variant for the weak
//!   (probabilistic) adversary of Section 8.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chain;
pub mod combinators;
pub mod counting;
pub mod deterministic;
pub mod grid_s;
pub mod protocol_a;
pub mod protocol_s;
pub mod trivial;
pub mod vector_s;
pub mod weak;

pub use chain::ChainProtocol;
pub use combinators::{CombineRule, Repeat};
pub use counting::{CountingMsg, CountingState};
pub use deterministic::DeterministicFlood;
pub use grid_s::GridS;
pub use protocol_a::ProtocolA;
pub use protocol_s::{ProtocolS, ValidityMode};
pub use trivial::{AttackOnInput, NeverAttack};
pub use vector_s::VectorS;
pub use weak::FixedThreshold;
