//! Breaks one E10-shaped Monte Carlo trial into its phases and times each in
//! isolation: RNG reseed, run sampling, tape refill, execution, and the
//! per-trial `modified_levels` call. Run with `cargo run --release -p ca-sim
//! --example profile_trial` when deciding where the next hot-path cycle
//! should go.

use ca_core::exec::{execute_outputs_into, ExecScratch};
use ca_core::graph::Graph;
use ca_core::level::{min_modified_level_into, LevelScratch};
use ca_core::run::Run;
use ca_core::tape::TapeSet;
use ca_protocols::ProtocolS;
use ca_sim::{RandomDrop, RunSampler};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Instant;

fn time<F: FnMut()>(label: &str, iters: u64, mut f: F) {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let per = start.elapsed().as_secs_f64() / iters as f64;
    println!("{label:<18} {:8.2} ns/iter", per * 1e9);
}

fn main() {
    let graph = Graph::complete(2).expect("graph");
    let n = 24u32;
    let proto = ProtocolS::new(1.0 / 12.0);
    let sampler = RandomDrop::new(&graph, n, 0.1);
    let iters = 200_000u64;

    let mut rng = StdRng::seed_from_u64(1);
    let mut sampled = Run::empty(0, 0);
    let mut tapes = TapeSet::empty(graph.len());
    let mut scratch = ExecScratch::new();
    let mut levels = LevelScratch::new();
    sampler.sample_into(&mut sampled, &mut rng);
    tapes.fill_random(&mut rng, 64);

    let mut seed = 0u64;
    time("reseed", iters, || {
        seed += 1;
        black_box(StdRng::seed_from_u64(seed));
    });
    time("sample_into", iters, || {
        sampler.sample_into(&mut sampled, &mut rng);
    });
    time("fill_random", iters, || {
        tapes.fill_random(&mut rng, 64);
    });
    time("execute", iters, || {
        black_box(execute_outputs_into(
            &proto,
            &graph,
            &sampled,
            &tapes,
            &mut scratch,
        ));
    });
    time("min_ml", iters, || {
        black_box(min_modified_level_into(&sampled, &mut levels));
    });
    time("full trial", iters, || {
        let mut rng = StdRng::seed_from_u64(seed);
        seed += 1;
        sampler.sample_into(&mut sampled, &mut rng);
        tapes.fill_random(&mut rng, 64);
        black_box(execute_outputs_into(
            &proto,
            &graph,
            &sampled,
            &tapes,
            &mut scratch,
        ));
        black_box(min_modified_level_into(&sampled, &mut levels));
    });
}
