//! Parallel Monte Carlo estimation of protocol behavior.
//!
//! The probability space of the paper is: fix a run `R`, draw the tapes `α`
//! uniformly. [`simulate`] estimates `Pr[TA|R]`, `Pr[NA|R]`, `Pr[PA|R]` and
//! the per-process decision probabilities `Pr[D_i|R]` by sampling tapes; the
//! run itself may also be resampled per trial (for the weak adversary) by
//! using a non-constant [`RunSampler`].
//!
//! Sampling is deterministic given the seed: trial `t` uses an RNG seeded by
//! `splitmix(seed, t)`, independent of thread scheduling, so every experiment
//! in EXPERIMENTS.md is exactly reproducible.
//!
//! Two execution paths produce the (byte-identical) reports: the scalar
//! oracle [`simulate_scalar`], which runs every trial through the full
//! [`Protocol`] state machine, and the bit-sliced 64-lane path
//! [`simulate_sliced`] for counting-automaton protocols over fixed-run or
//! iid-drop samplers. [`simulate`] picks the sliced path whenever it
//! applies; differential tests pin the two paths to each other.

use crate::stats::{BernoulliEstimate, RunningStats};
use crate::strategy::{RunSampler, SlicedSampler};
use ca_core::error::CaError;
use ca_core::exec::{execute_outputs_observed, ExecScratch};
use ca_core::exec_sliced::{SlicedEngine, SlicedSpec, LANES};
use ca_core::graph::Graph;
use ca_core::level::{min_modified_level_into, modified_levels, LevelScratch};
use ca_core::outcome::{Outcome, OutcomeCounts};
use ca_core::protocol::Protocol;
use ca_core::run::Run;
use ca_core::tape::TapeSet;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Results of a Monte Carlo simulation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Outcome tallies.
    pub counts: OutcomeCounts,
    /// Per-process attack tallies (`D_i` counts).
    pub attacks: Vec<u64>,
    /// Number of trials.
    pub trials: u64,
    /// Distribution of the run's modified level `ML(R)` across trials
    /// (interesting when the sampler is random; constant for a fixed run).
    pub ml: RunningStats,
}

impl SimReport {
    /// Empirical liveness `Pr[TA]`.
    pub fn liveness(&self) -> BernoulliEstimate {
        BernoulliEstimate::new(self.counts.total_attack, self.trials)
    }

    /// Empirical disagreement `Pr[PA]`.
    pub fn disagreement(&self) -> BernoulliEstimate {
        BernoulliEstimate::new(self.counts.partial_attack, self.trials)
    }

    /// Empirical decision probability `Pr[D_i]` of process `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn attack_rate(&self, i: ca_core::ids::ProcessId) -> BernoulliEstimate {
        BernoulliEstimate::new(self.attacks[i.index()], self.trials)
    }

    /// Merges another report's tallies into this one, failing on shape
    /// mismatch: reports over different process counts (different `attacks`
    /// lengths) describe different sample spaces and must never be pooled.
    /// On `Err` nothing has been merged — `self` is untouched.
    pub fn try_merge(&mut self, other: &SimReport) -> Result<(), CaError> {
        if self.attacks.len() != other.attacks.len() {
            return Err(CaError::malformed(format!(
                "cannot merge a SimReport over {} processes into one over {}",
                other.attacks.len(),
                self.attacks.len()
            )));
        }
        self.counts.merge(&other.counts);
        for (a, b) in self.attacks.iter_mut().zip(&other.attacks) {
            *a += b;
        }
        self.trials += other.trials;
        self.ml.merge(&other.ml);
        Ok(())
    }

    /// Merges another report's tallies into this one.
    ///
    /// # Panics
    ///
    /// Panics if the reports' shapes differ (see [`SimReport::try_merge`]).
    /// The pre-fix `zip` silently truncated the longer `attacks` vector,
    /// corrupting per-process tallies when reports from different graph
    /// sizes were pooled.
    pub fn merge(&mut self, other: &SimReport) {
        debug_assert_eq!(
            self.attacks.len(),
            other.attacks.len(),
            "merging SimReports of mismatched shape"
        );
        self.try_merge(other).expect("mismatched SimReport shapes");
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} | L={} U={}",
            self.counts,
            self.liveness(),
            self.disagreement()
        )
    }
}

/// Configuration for a simulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Number of Monte Carlo trials.
    pub trials: u64,
    /// Base seed; the whole simulation is a deterministic function of it.
    pub seed: u64,
    /// Number of worker threads (0 = use available parallelism).
    pub threads: usize,
}

impl SimConfig {
    /// A configuration with the given number of trials and seed, using all
    /// available cores.
    pub fn new(trials: u64, seed: u64) -> Self {
        SimConfig {
            trials,
            seed,
            threads: 0,
        }
    }

    fn worker_count(&self) -> usize {
        crate::chaos::resolve_workers(self.threads)
    }
}

/// SplitMix64: decorrelates per-trial seeds from the base seed.
fn splitmix(seed: u64, index: u64) -> u64 {
    let mut z = seed.wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Domain-separation tag for the common-random-numbers stream of
/// [`worst_disagreement`].
///
/// Member seeds come from a *re-keyed* SplitMix stream,
/// `splitmix(splitmix(seed, CRN_STREAM), k)`: mixing the tag through the
/// full avalanche **before** indexing puts the member seeds on a different
/// stream from the per-trial `splitmix(seed, t)` inside [`simulate`], so the
/// two stay structurally disjoint however large `trials` or the family
/// grow. (The previous scheme, `splitmix(seed, k + 0x5EED)`, merely offset
/// the *same* stream by `0x5EED = 24301` — per-trial seeds collide with it
/// as soon as `trials > 0x5EED`, making member `k`'s trials correlate with
/// trials `0x5EED + k` of any simulation sharing the base seed.)
const CRN_STREAM: u64 = 0x43524E_5354524D; // "CRN" "STRM"

/// The derived seed of family member `k` under the CRN scheme.
fn crn_member_seed(seed: u64, k: u64) -> u64 {
    splitmix(splitmix(seed, CRN_STREAM), k)
}

/// Runs `config.trials` independent executions of `protocol` on runs drawn
/// from `sampler`, with fresh tapes per trial, in parallel.
///
/// Dispatches to the bit-sliced 64-lane engine ([`simulate_sliced`]) when
/// both the protocol and the sampler support it, and to the scalar oracle
/// ([`simulate_scalar`]) otherwise. The two paths are byte-identical by
/// contract — same `(seed, trials)`, same report — so the dispatch is
/// unobservable except in throughput.
///
/// # Panics
///
/// Panics if the sampler produces runs whose dimensions do not match `graph`.
pub fn simulate<P, S>(protocol: &P, graph: &Graph, sampler: &S, config: SimConfig) -> SimReport
where
    P: Protocol + Sync,
    S: RunSampler,
{
    match simulate_sliced(protocol, graph, sampler, config) {
        Some(report) => report,
        None => simulate_scalar(protocol, graph, sampler, config),
    }
}

/// The scalar Monte Carlo path: one `(run, tapes)` execution per trial on
/// [`ca_core::exec`].
///
/// This is the **cross-check oracle** for [`simulate_sliced`]: it executes
/// protocols through their full [`Protocol`] state machines, making no
/// structural assumptions, so the differential tests hold the sliced path to
/// whatever this one reports. It is also the path every protocol/sampler
/// combination without sliced support takes.
///
/// # Panics
///
/// Panics if the sampler produces runs whose dimensions do not match `graph`.
pub fn simulate_scalar<P, S>(
    protocol: &P,
    graph: &Graph,
    sampler: &S,
    config: SimConfig,
) -> SimReport
where
    P: Protocol + Sync,
    S: RunSampler,
{
    let m = graph.len();
    let workers = config.worker_count().max(1);
    let report = Mutex::new(SimReport {
        counts: OutcomeCounts::new(),
        attacks: vec![0; m],
        trials: 0,
        ml: RunningStats::new(),
    });

    // The whole-call span lives on its own sink so its count is 1 per
    // `simulate` call (a stable number), never 1 per worker (which would
    // vary with the thread count and break profile byte-stability).
    let outer_obs = ca_obs::Metrics::new();
    let outer_span = outer_obs.span(ca_obs::SpanId::SimSimulate);

    // Static partition of the trial indices across workers; per-trial
    // reseeding keeps the result independent of the partitioning. Each
    // worker owns one RNG, one tape set, and one execution scratch for its
    // whole trial range — the per-trial loop allocates nothing beyond what
    // the sampler itself requires.
    crossbeam::thread::scope(|scope| {
        for w in 0..workers {
            let report = &report;
            scope.spawn(move |_| {
                use ca_obs::{CounterId, HistId, SpanId};
                // Per-worker observability sink, merged into the global
                // snapshot at join — same discipline as `local` below, so
                // the fast path records into plain `Cell`s.
                let obs = ca_obs::Metrics::new();
                let mut local = SimReport {
                    counts: OutcomeCounts::new(),
                    attacks: vec![0; m],
                    trials: 0,
                    ml: RunningStats::new(),
                };
                // For a fixed-run sampler the run (and hence ML(R)) is the
                // same every trial, and sampling consumes no randomness: use
                // the run by reference and compute ML once.
                let fixed_run = sampler.fixed_run();
                let fixed_ml = fixed_run.map(|r| modified_levels(r).min_level() as f64);
                let j_bits = protocol.tape_bits().max(1);
                let mut tapes = TapeSet::empty(m);
                let mut scratch = ExecScratch::new();
                // One scratch run per worker: randomized samplers refill it
                // in place (`sample_into`), so the per-trial loop performs no
                // run allocation at all once the buffers have warmed up.
                let mut sampled = Run::empty(0, 0);
                let mut level_scratch = LevelScratch::new();
                let mut rng;
                let mut t = w as u64;
                while t < config.trials {
                    let _trial_span = obs.span(SpanId::SimTrial);
                    // One worker-local RNG, reseeded per trial from the
                    // SplitMix stream: trial t's draws are a function of
                    // (seed, t) alone, whatever worker runs it.
                    rng = StdRng::seed_from_u64(splitmix(config.seed, t));
                    let run: &Run = match fixed_run {
                        Some(run) => {
                            obs.inc(CounterId::SimFixedRunTrials);
                            run
                        }
                        None => {
                            let _sample_span = obs.span(SpanId::RunSample);
                            sampler.sample_into_observed(&mut sampled, &mut rng, &obs);
                            &sampled
                        }
                    };
                    tapes.fill_random(&mut rng, j_bits);
                    obs.inc(CounterId::SimTapeRefills);
                    let outputs =
                        execute_outputs_observed(protocol, graph, run, &tapes, &mut scratch, &obs);
                    let verdict_span = obs.span(SpanId::SimVerdict);
                    let outcome = Outcome::classify(outputs);
                    local.counts.record(outcome);
                    for (i, &o) in outputs.iter().enumerate() {
                        if o {
                            local.attacks[i] += 1;
                        }
                    }
                    let ml = match fixed_ml {
                        Some(ml) => ml,
                        None => min_modified_level_into(run, &mut level_scratch) as f64,
                    };
                    drop(verdict_span);
                    local.ml.record(ml);
                    obs.record(HistId::SimTrialMl, ml as u64);
                    obs.inc(CounterId::SimTrials);
                    local.trials += 1;
                    t += workers as u64;
                }
                obs.flush();
                report.lock().merge(&local);
            });
        }
    })
    .expect("simulation worker panicked");

    drop(outer_span);
    outer_obs.flush();
    report.into_inner()
}

/// The bit-sliced 64-lane Monte Carlo path: packs trials into 64-wide lane
/// groups per worker and executes each group in one pass of
/// [`SlicedEngine`], for counting-automaton protocols over fixed-run or
/// iid-drop samplers.
///
/// The per-trial `(seed, t)` determinism contract is preserved exactly:
/// lane `t mod 64` of group `t / 64` reseeds
/// `StdRng::seed_from_u64(splitmix(seed, t))` and replays the scalar draw
/// order — sampler coins first (one `gen_bool(p)` per base slot in canonical
/// slot order), then the leader's tape words — so the returned report is
/// **byte-identical** to [`simulate_scalar`]'s for the same `(seed,
/// trials)`, whatever the thread count. Groups are statically partitioned
/// across workers the way trials are in the scalar path.
///
/// Returns `None` when the combination cannot run sliced — the protocol has
/// no [`Protocol::sliced_spec`], the sampler has no [`RunSampler::sliced`]
/// description, or the instance exceeds the engine's size guards
/// ([`SlicedEngine::new`]) — in which case the caller falls back to the
/// scalar path ([`simulate`] does this automatically).
///
/// # Panics
///
/// Panics if the sampler's base run disagrees with `graph` on process count.
pub fn simulate_sliced<P, S>(
    protocol: &P,
    graph: &Graph,
    sampler: &S,
    config: SimConfig,
) -> Option<SimReport>
where
    P: Protocol + Sync,
    S: RunSampler,
{
    let spec = protocol.sliced_spec()?;
    let sliced = sampler.sliced()?;
    let base = sliced.base_run();
    assert_eq!(
        graph.len(),
        base.process_count(),
        "graph and run disagree on process count"
    );
    // Validate the instance once up front; each worker then builds its own
    // engine infallibly.
    SlicedEngine::new(base, spec)?;

    let m = graph.len();
    let n = base.horizon();
    let workers = config.worker_count().max(1);
    let report = Mutex::new(SimReport {
        counts: OutcomeCounts::new(),
        attacks: vec![0; m],
        trials: 0,
        ml: RunningStats::new(),
    });

    // Same discipline as the scalar path: the whole-call span on its own
    // sink, one `Metrics` + one local report per worker, merged at join.
    let outer_obs = ca_obs::Metrics::new();
    let outer_span = outer_obs.span(ca_obs::SpanId::SimSimulate);

    let groups = config.trials.div_ceil(LANES as u64);
    // Potential directed slots per trial; what a trial does not keep, the
    // adversary destroyed (mirrors the scalar engine's accounting).
    let edge_slots = (graph.edge_count() as u64) * 2 * u64::from(n);

    crossbeam::thread::scope(|scope| {
        for w in 0..workers {
            let report = &report;
            scope.spawn(move |_| {
                use ca_obs::{CounterId, HistId, SpanId};
                let obs = ca_obs::Metrics::new();
                let mut local = SimReport {
                    counts: OutcomeCounts::new(),
                    attacks: vec![0; m],
                    trials: 0,
                    ml: RunningStats::new(),
                };
                let mut engine =
                    SlicedEngine::new(base, spec).expect("instance validated before spawning");
                let slot_count = engine.slot_count();
                // Slots each lane kept (= messages delivered in its trial).
                let mut kept_lanes = [0u64; LANES];
                let mut rng;
                let mut g = w as u64;
                while g < groups {
                    // One `sim.trial` span per 64-trial group: span counts
                    // measure engine passes, counters keep counting trials.
                    let _group_span = obs.span(SpanId::SimTrial);
                    obs.inc(CounterId::SimSlicedGroups);
                    let first = g * LANES as u64;
                    let active = (config.trials - first).min(LANES as u64) as usize;
                    engine.begin_group();
                    // One `run.sample` span per group (the per-trial counters
                    // still count trials); per-lane counter ticks accumulate
                    // locally and post once per group — a span pair and
                    // several sink writes per trial would otherwise rival the
                    // sliced engine's own per-trial cost.
                    let sample_span = obs.span(SpanId::RunSample);
                    let mut flipped_total = 0u64;
                    for (lane, kept) in kept_lanes.iter_mut().take(active).enumerate() {
                        let t = first + lane as u64;
                        rng = StdRng::seed_from_u64(splitmix(config.seed, t));
                        match sliced {
                            SlicedSampler::Fixed(_) => {
                                *kept = slot_count as u64;
                            }
                            SlicedSampler::IidDrop { p, .. } => {
                                let mut flipped = 0u64;
                                for slot in 0..slot_count {
                                    if rng.gen_bool(p) {
                                        engine.destroy_slot_lane(slot, lane);
                                        flipped += 1;
                                    }
                                }
                                flipped_total += flipped;
                                *kept = slot_count as u64 - flipped;
                            }
                        }
                        if let SlicedSpec::RandomFire {
                            offset, t: width, ..
                        } = spec
                        {
                            // The leader's rfire draw. The scalar path does
                            // `TapeSet::fill_random_leader` and then reads
                            // `draw_unit()` = (first tape word + 1) / 2⁶⁴;
                            // the first tape word is exactly the next
                            // `rng.gen::<u64>()` of the fill, and the
                            // per-trial RNG is discarded right after, so
                            // drawing that one word here yields a rfire
                            // bit-identical to the scalar trial's.
                            let word = rng.gen::<u64>();
                            let unit = (word as f64 + 1.0) / 18_446_744_073_709_551_616.0; // 2^64
                            engine.set_rfire(lane, offset + width * unit);
                        }
                    }
                    match sliced {
                        SlicedSampler::Fixed(_) => {
                            obs.add(CounterId::SimFixedRunTrials, active as u64);
                        }
                        SlicedSampler::IidDrop { .. } => {
                            obs.add(CounterId::RunSamples, active as u64);
                            obs.add(CounterId::RunSlotsFlipped, flipped_total);
                        }
                    }
                    if matches!(spec, SlicedSpec::RandomFire { .. }) {
                        obs.add(CounterId::SimTapeRefills, active as u64);
                    }
                    drop(sample_span);
                    let out = {
                        let _exec_span = obs.span(SpanId::ExecExecute);
                        engine.run_group()
                    };
                    // Aggregate execution counters over the group; per-trial
                    // sums match the scalar engine's per-trial adds.
                    let kept_total: u64 = kept_lanes[..active].iter().sum();
                    obs.add(
                        CounterId::ExecTransitions,
                        (m as u64) * u64::from(n) * active as u64,
                    );
                    obs.add(CounterId::ExecMessagesDelivered, kept_total);
                    obs.add(
                        CounterId::ExecMessagesDestroyed,
                        edge_slots * active as u64 - kept_total,
                    );
                    if matches!(spec, SlicedSpec::RandomFire { .. }) {
                        // Only the leader consumes tape bits (64 per trial).
                        obs.add(CounterId::ExecTapeBitsConsumed, 64 * active as u64);
                    }
                    let verdict_span = obs.span(SpanId::SimVerdict);
                    // Tally the packed outputs: a trial is a total attack iff
                    // its lane is set in every process's attack word, a
                    // no-attack iff set in none.
                    let live: u64 = if active == LANES {
                        !0
                    } else {
                        (1u64 << active) - 1
                    };
                    let mut ta = live;
                    let mut na = live;
                    for (i, &attack) in out.attack.iter().enumerate() {
                        ta &= attack;
                        na &= !attack;
                        local.attacks[i] += u64::from((attack & live).count_ones());
                    }
                    let ta = u64::from(ta.count_ones());
                    let na = u64::from(na.count_ones());
                    local.counts.total_attack += ta;
                    local.counts.no_attack += na;
                    local.counts.partial_attack += active as u64 - ta - na;
                    for (lane, &kept) in kept_lanes.iter().take(active).enumerate() {
                        // Lemma 6.4: the minimum final count is the run's
                        // minimum modified level, which is what the scalar
                        // path records per trial.
                        let ml = f64::from(out.min_count[lane]);
                        local.ml.record(ml);
                        obs.record(HistId::SimTrialMl, ml as u64);
                        obs.record(HistId::ExecDeliveredPerTrial, kept);
                    }
                    drop(verdict_span);
                    obs.add(CounterId::SimTrials, active as u64);
                    local.trials += active as u64;
                    g += workers as u64;
                }
                obs.flush();
                report.lock().merge(&local);
            });
        }
    })
    .expect("simulation worker panicked");

    drop(outer_span);
    outer_obs.flush();
    Some(report.into_inner())
}

/// Estimates the worst-case disagreement probability of `protocol` over a
/// family of candidate runs, simulating each and returning
/// `(worst_index, reports)`.
///
/// Each family member `k` is simulated under its own derived seed
/// `crn_member_seed(seed, k)` — a common-random-numbers scheme on a
/// domain-separated SplitMix stream (the private `CRN_STREAM` tag): run `k`
/// always
/// sees the same trial randomness no matter which other runs share the
/// family, so estimates are comparable across invocations and adding or
/// removing candidates never perturbs the others' numbers, and the member
/// seeds can never collide with the per-trial stream `splitmix(seed, t)`
/// used inside [`simulate`].
///
/// Ties in the estimated disagreement are broken toward the **first** index
/// in family order, so the reported worst run is stable under appending new
/// candidates and independent of how equal maxima are arranged.
///
/// # Panics
///
/// Panics if `family` is empty or `config.trials == 0` — a zero-trial
/// comparison would rank every member by its degenerate zero-trial estimate
/// and return an arbitrary index.
pub fn worst_disagreement<P>(
    protocol: &P,
    graph: &Graph,
    family: &[ca_core::run::Run],
    config: SimConfig,
) -> (usize, Vec<SimReport>)
where
    P: Protocol + Sync,
{
    assert!(!family.is_empty(), "empty run family");
    assert!(
        config.trials > 0,
        "worst_disagreement over zero trials has no meaningful winner"
    );
    let reports: Vec<SimReport> = family
        .iter()
        .enumerate()
        .map(|(k, run)| {
            let sampler = crate::strategy::FixedRun::new(run.clone());
            let cfg = SimConfig {
                seed: crn_member_seed(config.seed, k as u64),
                ..config
            };
            simulate(protocol, graph, &sampler, cfg)
        })
        .collect();
    let mut worst = 0;
    for (k, report) in reports.iter().enumerate().skip(1) {
        // Strict `>`: the first maximal index wins ties.
        if report.disagreement().point() > reports[worst].disagreement().point() {
            worst = k;
        }
    }
    (worst, reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{FixedRun, RandomDrop};
    use ca_core::ids::{ProcessId, Round};
    use ca_core::run::Run;
    use ca_protocols::{ProtocolA, ProtocolS};

    #[test]
    fn splitmix_spreads_seeds() {
        let a = splitmix(42, 0);
        let b = splitmix(42, 1);
        let c = splitmix(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn simulation_is_deterministic_given_seed() {
        let g = Graph::complete(2).unwrap();
        let proto = ProtocolS::new(0.25);
        let sampler = FixedRun::new(Run::good(&g, 4));
        let cfg = SimConfig::new(500, 7);
        let a = simulate(&proto, &g, &sampler, cfg);
        let b = simulate(&proto, &g, &sampler, cfg);
        assert_eq!(a, b);
        // And independent of the thread count.
        let serial = SimConfig { threads: 1, ..cfg };
        let c = simulate(&proto, &g, &sampler, serial);
        assert_eq!(a, c);
    }

    #[test]
    fn liveness_on_good_run_matches_theory() {
        // ε = 1/8, N = 4 on a 2-clique: ML(R) = 4, L = 1/2.
        let g = Graph::complete(2).unwrap();
        let proto = ProtocolS::new(0.125);
        let sampler = FixedRun::new(Run::good(&g, 4));
        let report = simulate(&proto, &g, &sampler, SimConfig::new(4000, 11));
        // Pass/fail verdicts use z = 4 (~1/16k false-failure rate); the 95%
        // interval is for display only.
        assert!(report.liveness().consistent_with_z(0.5, 4.0), "{report}");
        assert_eq!(report.ml.mean(), 4.0);
        assert_eq!(report.trials, 4000);
    }

    #[test]
    fn per_process_attack_rates() {
        // On the good run the leader's count is Mincount+1, so it attacks
        // with probability ε(ML+1), the follower with ε·ML.
        let g = Graph::complete(2).unwrap();
        let proto = ProtocolS::new(0.125);
        let sampler = FixedRun::new(Run::good(&g, 4));
        let report = simulate(&proto, &g, &sampler, SimConfig::new(6000, 13));
        let leader = report.attack_rate(ProcessId::new(0));
        let follower = report.attack_rate(ProcessId::new(1));
        assert!(leader.consistent_with_z(0.625, 4.0), "leader {leader}");
        assert!(follower.consistent_with_z(0.5, 4.0), "follower {follower}");
    }

    #[test]
    fn worst_disagreement_finds_the_planted_cut() {
        // Protocol A with a small cut family: every mid-chain cut has
        // PA probability 1/(N-1); cut at round 1 and the good run have 0.
        let n = 5u32;
        let g = Graph::complete(2).unwrap();
        let proto = ProtocolA::new(n);
        let family = vec![
            Run::good(&g, n),
            {
                let mut r = Run::good(&g, n);
                r.cut_from_round(Round::new(1));
                r
            },
            {
                let mut r = Run::good(&g, n);
                r.cut_from_round(Round::new(3));
                r
            },
        ];
        let (worst, reports) = worst_disagreement(&proto, &g, &family, SimConfig::new(1500, 17));
        assert_eq!(worst, 2, "the mid-chain cut must be worst");
        assert!(reports[0].disagreement().point() < 1e-9);
        assert!(reports[1].disagreement().point() < 1e-9);
        assert!(reports[2].disagreement().consistent_with_z(0.25, 4.0));
    }

    #[test]
    fn weak_adversary_sampler_integration() {
        let g = Graph::complete(2).unwrap();
        let proto = ProtocolS::new(0.25);
        let sampler = RandomDrop::new(&g, 8, 0.2);
        let report = simulate(&proto, &g, &sampler, SimConfig::new(800, 19));
        // Liveness should be substantial and disagreement far below ε.
        assert!(report.liveness().point() > 0.5, "{report}");
        assert!(report.disagreement().point() < 0.25, "{report}");
        // ML varies across sampled runs.
        assert!(report.ml.std_dev() > 0.0);
    }

    fn report_over(m: usize, trials: u64) -> SimReport {
        SimReport {
            counts: OutcomeCounts {
                total_attack: trials,
                no_attack: 0,
                partial_attack: 0,
            },
            attacks: vec![trials; m],
            trials,
            ml: RunningStats::new(),
        }
    }

    #[test]
    fn try_merge_rejects_mismatched_shapes_without_mutating() {
        // Regression: the pre-fix `merge` zipped the attacks vectors, so a
        // 3-process report merged into a 2-process one silently dropped the
        // third process's tallies while still adding the trials.
        let mut a = report_over(2, 10);
        let before = a.clone();
        let b = report_over(3, 5);
        assert!(a.try_merge(&b).is_err());
        assert_eq!(a, before, "a failed merge must leave self untouched");
        // Matching shapes still merge.
        assert!(a.try_merge(&report_over(2, 5)).is_ok());
        assert_eq!(a.trials, 15);
        assert_eq!(a.attacks, vec![15, 15]);
    }

    #[test]
    #[should_panic(expected = "mismatched")]
    fn merge_panics_on_mismatched_shapes() {
        let mut a = report_over(2, 10);
        a.merge(&report_over(3, 5));
    }

    #[test]
    fn crn_stream_is_disjoint_from_trial_seeds() {
        // Regression: the pre-fix scheme `splitmix(seed, k + 0x5EED)` is the
        // per-trial stream offset by 24301, so member k's seed equaled trial
        // (0x5EED + k)'s seed exactly.
        let seed = 42u64;
        let trial_seeds: std::collections::HashSet<u64> =
            (0..30_000).map(|t| splitmix(seed, t)).collect();
        let old_member_seed = splitmix(seed, 5 + 0x5EED);
        assert!(
            trial_seeds.contains(&old_member_seed),
            "sanity: the pre-fix scheme collides with the per-trial stream"
        );
        for k in 0..64 {
            assert!(
                !trial_seeds.contains(&crn_member_seed(seed, k)),
                "member {k}'s CRN seed collides with a per-trial seed"
            );
        }
    }

    #[test]
    #[should_panic(expected = "zero trials")]
    fn worst_disagreement_rejects_zero_trials() {
        // Regression: with 0 trials every member's disagreement estimate is
        // the degenerate default, the strict-`>` scan never updates, and
        // index 0 was returned as if it meant something.
        let g = Graph::complete(2).unwrap();
        let family = vec![Run::good(&g, 3)];
        worst_disagreement(&ProtocolA::new(3), &g, &family, SimConfig::new(0, 1));
    }

    #[test]
    fn sliced_dispatch_engages_exactly_when_supported() {
        let g = Graph::complete(2).unwrap();
        let cfg = SimConfig::new(100, 23);
        let s = ProtocolS::new(0.25);
        let drop = RandomDrop::new(&g, 4, 0.3);
        assert!(simulate_sliced(&s, &g, &drop, cfg).is_some());
        assert!(simulate_sliced(&s, &g, &FixedRun::new(Run::good(&g, 4)), cfg).is_some());
        // Input-randomizing samplers and non-counting protocols fall back.
        let rr = crate::strategy::RandomRun::new(g.clone(), 4, 0.8, 0.7);
        assert!(simulate_sliced(&s, &g, &rr, cfg).is_none());
        assert!(simulate_sliced(&ProtocolA::new(4), &g, &drop, cfg).is_none());
    }

    #[test]
    fn sliced_path_matches_the_scalar_oracle_byte_for_byte() {
        let g = Graph::complete(3).unwrap();
        let cfg = SimConfig::new(333, 29); // crosses lane-group boundaries
        let s = ProtocolS::new(0.2);
        let drop = RandomDrop::new(&g, 5, 0.25);
        let sliced = simulate_sliced(&s, &g, &drop, cfg).expect("sliced path must engage");
        assert_eq!(sliced, simulate_scalar(&s, &g, &drop, cfg));
        let fixed = FixedRun::new(Run::good(&g, 5));
        let sliced = simulate_sliced(&s, &g, &fixed, cfg).expect("sliced path must engage");
        assert_eq!(sliced, simulate_scalar(&s, &g, &fixed, cfg));
    }
}
