//! Parallel Monte Carlo estimation of protocol behavior.
//!
//! The probability space of the paper is: fix a run `R`, draw the tapes `α`
//! uniformly. [`simulate`] estimates `Pr[TA|R]`, `Pr[NA|R]`, `Pr[PA|R]` and
//! the per-process decision probabilities `Pr[D_i|R]` by sampling tapes; the
//! run itself may also be resampled per trial (for the weak adversary) by
//! using a non-constant [`RunSampler`].
//!
//! Sampling is deterministic given the seed: trial `t` uses an RNG seeded by
//! `splitmix(seed, t)`, independent of thread scheduling, so every experiment
//! in EXPERIMENTS.md is exactly reproducible.

use crate::stats::{BernoulliEstimate, RunningStats};
use crate::strategy::RunSampler;
use ca_core::exec::{execute_outputs_observed, ExecScratch};
use ca_core::graph::Graph;
use ca_core::level::{min_modified_level_into, modified_levels, LevelScratch};
use ca_core::outcome::{Outcome, OutcomeCounts};
use ca_core::protocol::Protocol;
use ca_core::run::Run;
use ca_core::tape::TapeSet;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Results of a Monte Carlo simulation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Outcome tallies.
    pub counts: OutcomeCounts,
    /// Per-process attack tallies (`D_i` counts).
    pub attacks: Vec<u64>,
    /// Number of trials.
    pub trials: u64,
    /// Distribution of the run's modified level `ML(R)` across trials
    /// (interesting when the sampler is random; constant for a fixed run).
    pub ml: RunningStats,
}

impl SimReport {
    /// Empirical liveness `Pr[TA]`.
    pub fn liveness(&self) -> BernoulliEstimate {
        BernoulliEstimate::new(self.counts.total_attack, self.trials)
    }

    /// Empirical disagreement `Pr[PA]`.
    pub fn disagreement(&self) -> BernoulliEstimate {
        BernoulliEstimate::new(self.counts.partial_attack, self.trials)
    }

    /// Empirical decision probability `Pr[D_i]` of process `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn attack_rate(&self, i: ca_core::ids::ProcessId) -> BernoulliEstimate {
        BernoulliEstimate::new(self.attacks[i.index()], self.trials)
    }

    fn merge(&mut self, other: &SimReport) {
        self.counts.merge(&other.counts);
        for (a, b) in self.attacks.iter_mut().zip(&other.attacks) {
            *a += b;
        }
        self.trials += other.trials;
        self.ml.merge(&other.ml);
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} | L={} U={}",
            self.counts,
            self.liveness(),
            self.disagreement()
        )
    }
}

/// Configuration for a simulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Number of Monte Carlo trials.
    pub trials: u64,
    /// Base seed; the whole simulation is a deterministic function of it.
    pub seed: u64,
    /// Number of worker threads (0 = use available parallelism).
    pub threads: usize,
}

impl SimConfig {
    /// A configuration with the given number of trials and seed, using all
    /// available cores.
    pub fn new(trials: u64, seed: u64) -> Self {
        SimConfig {
            trials,
            seed,
            threads: 0,
        }
    }

    fn worker_count(&self) -> usize {
        crate::chaos::resolve_workers(self.threads)
    }
}

/// SplitMix64: decorrelates per-trial seeds from the base seed.
fn splitmix(seed: u64, index: u64) -> u64 {
    let mut z = seed.wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs `config.trials` independent executions of `protocol` on runs drawn
/// from `sampler`, with fresh tapes per trial, in parallel.
///
/// # Panics
///
/// Panics if the sampler produces runs whose dimensions do not match `graph`.
pub fn simulate<P, S>(protocol: &P, graph: &Graph, sampler: &S, config: SimConfig) -> SimReport
where
    P: Protocol + Sync,
    S: RunSampler,
{
    let m = graph.len();
    let workers = config.worker_count().max(1);
    let report = Mutex::new(SimReport {
        counts: OutcomeCounts::new(),
        attacks: vec![0; m],
        trials: 0,
        ml: RunningStats::new(),
    });

    // The whole-call span lives on its own sink so its count is 1 per
    // `simulate` call (a stable number), never 1 per worker (which would
    // vary with the thread count and break profile byte-stability).
    let outer_obs = ca_obs::Metrics::new();
    let outer_span = outer_obs.span(ca_obs::SpanId::SimSimulate);

    // Static partition of the trial indices across workers; per-trial
    // reseeding keeps the result independent of the partitioning. Each
    // worker owns one RNG, one tape set, and one execution scratch for its
    // whole trial range — the per-trial loop allocates nothing beyond what
    // the sampler itself requires.
    crossbeam::thread::scope(|scope| {
        for w in 0..workers {
            let report = &report;
            scope.spawn(move |_| {
                use ca_obs::{CounterId, HistId, SpanId};
                // Per-worker observability sink, merged into the global
                // snapshot at join — same discipline as `local` below, so
                // the fast path records into plain `Cell`s.
                let obs = ca_obs::Metrics::new();
                let mut local = SimReport {
                    counts: OutcomeCounts::new(),
                    attacks: vec![0; m],
                    trials: 0,
                    ml: RunningStats::new(),
                };
                // For a fixed-run sampler the run (and hence ML(R)) is the
                // same every trial, and sampling consumes no randomness: use
                // the run by reference and compute ML once.
                let fixed_run = sampler.fixed_run();
                let fixed_ml = fixed_run.map(|r| modified_levels(r).min_level() as f64);
                let j_bits = protocol.tape_bits().max(1);
                let mut tapes = TapeSet::empty(m);
                let mut scratch = ExecScratch::new();
                // One scratch run per worker: randomized samplers refill it
                // in place (`sample_into`), so the per-trial loop performs no
                // run allocation at all once the buffers have warmed up.
                let mut sampled = Run::empty(0, 0);
                let mut level_scratch = LevelScratch::new();
                let mut rng;
                let mut t = w as u64;
                while t < config.trials {
                    let _trial_span = obs.span(SpanId::SimTrial);
                    // One worker-local RNG, reseeded per trial from the
                    // SplitMix stream: trial t's draws are a function of
                    // (seed, t) alone, whatever worker runs it.
                    rng = StdRng::seed_from_u64(splitmix(config.seed, t));
                    let run: &Run = match fixed_run {
                        Some(run) => {
                            obs.inc(CounterId::SimFixedRunTrials);
                            run
                        }
                        None => {
                            let _sample_span = obs.span(SpanId::RunSample);
                            sampler.sample_into_observed(&mut sampled, &mut rng, &obs);
                            &sampled
                        }
                    };
                    tapes.fill_random(&mut rng, j_bits);
                    obs.inc(CounterId::SimTapeRefills);
                    let outputs =
                        execute_outputs_observed(protocol, graph, run, &tapes, &mut scratch, &obs);
                    let verdict_span = obs.span(SpanId::SimVerdict);
                    let outcome = Outcome::classify(outputs);
                    local.counts.record(outcome);
                    for (i, &o) in outputs.iter().enumerate() {
                        if o {
                            local.attacks[i] += 1;
                        }
                    }
                    let ml = match fixed_ml {
                        Some(ml) => ml,
                        None => min_modified_level_into(run, &mut level_scratch) as f64,
                    };
                    drop(verdict_span);
                    local.ml.record(ml);
                    obs.record(HistId::SimTrialMl, ml as u64);
                    obs.inc(CounterId::SimTrials);
                    local.trials += 1;
                    t += workers as u64;
                }
                obs.flush();
                report.lock().merge(&local);
            });
        }
    })
    .expect("simulation worker panicked");

    drop(outer_span);
    outer_obs.flush();
    report.into_inner()
}

/// Estimates the worst-case disagreement probability of `protocol` over a
/// family of candidate runs, simulating each and returning
/// `(worst_index, reports)`.
///
/// Each family member `k` is simulated under its own derived seed
/// `splitmix(seed, k + 0x5EED)` — a common-random-numbers scheme: run `k`
/// always sees the same trial randomness no matter which other runs share
/// the family, so estimates are comparable across invocations and adding or
/// removing candidates never perturbs the others' numbers. (The `0x5EED`
/// offset keeps these derived seeds disjoint from the per-trial stream
/// `splitmix(seed, t)` used inside [`simulate`].)
///
/// Ties in the estimated disagreement are broken toward the **first** index
/// in family order, so the reported worst run is stable under appending new
/// candidates and independent of how equal maxima are arranged.
///
/// # Panics
///
/// Panics if `family` is empty.
pub fn worst_disagreement<P>(
    protocol: &P,
    graph: &Graph,
    family: &[ca_core::run::Run],
    config: SimConfig,
) -> (usize, Vec<SimReport>)
where
    P: Protocol + Sync,
{
    assert!(!family.is_empty(), "empty run family");
    let reports: Vec<SimReport> = family
        .iter()
        .enumerate()
        .map(|(k, run)| {
            let sampler = crate::strategy::FixedRun::new(run.clone());
            let cfg = SimConfig {
                seed: splitmix(config.seed, k as u64 + 0x5EED),
                ..config
            };
            simulate(protocol, graph, &sampler, cfg)
        })
        .collect();
    let mut worst = 0;
    for (k, report) in reports.iter().enumerate().skip(1) {
        // Strict `>`: the first maximal index wins ties.
        if report.disagreement().point() > reports[worst].disagreement().point() {
            worst = k;
        }
    }
    (worst, reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{FixedRun, RandomDrop};
    use ca_core::ids::{ProcessId, Round};
    use ca_core::run::Run;
    use ca_protocols::{ProtocolA, ProtocolS};

    #[test]
    fn splitmix_spreads_seeds() {
        let a = splitmix(42, 0);
        let b = splitmix(42, 1);
        let c = splitmix(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn simulation_is_deterministic_given_seed() {
        let g = Graph::complete(2).unwrap();
        let proto = ProtocolS::new(0.25);
        let sampler = FixedRun::new(Run::good(&g, 4));
        let cfg = SimConfig::new(500, 7);
        let a = simulate(&proto, &g, &sampler, cfg);
        let b = simulate(&proto, &g, &sampler, cfg);
        assert_eq!(a, b);
        // And independent of the thread count.
        let serial = SimConfig { threads: 1, ..cfg };
        let c = simulate(&proto, &g, &sampler, serial);
        assert_eq!(a, c);
    }

    #[test]
    fn liveness_on_good_run_matches_theory() {
        // ε = 1/8, N = 4 on a 2-clique: ML(R) = 4, L = 1/2.
        let g = Graph::complete(2).unwrap();
        let proto = ProtocolS::new(0.125);
        let sampler = FixedRun::new(Run::good(&g, 4));
        let report = simulate(&proto, &g, &sampler, SimConfig::new(4000, 11));
        // Pass/fail verdicts use z = 4 (~1/16k false-failure rate); the 95%
        // interval is for display only.
        assert!(report.liveness().consistent_with_z(0.5, 4.0), "{report}");
        assert_eq!(report.ml.mean(), 4.0);
        assert_eq!(report.trials, 4000);
    }

    #[test]
    fn per_process_attack_rates() {
        // On the good run the leader's count is Mincount+1, so it attacks
        // with probability ε(ML+1), the follower with ε·ML.
        let g = Graph::complete(2).unwrap();
        let proto = ProtocolS::new(0.125);
        let sampler = FixedRun::new(Run::good(&g, 4));
        let report = simulate(&proto, &g, &sampler, SimConfig::new(6000, 13));
        let leader = report.attack_rate(ProcessId::new(0));
        let follower = report.attack_rate(ProcessId::new(1));
        assert!(leader.consistent_with_z(0.625, 4.0), "leader {leader}");
        assert!(follower.consistent_with_z(0.5, 4.0), "follower {follower}");
    }

    #[test]
    fn worst_disagreement_finds_the_planted_cut() {
        // Protocol A with a small cut family: every mid-chain cut has
        // PA probability 1/(N-1); cut at round 1 and the good run have 0.
        let n = 5u32;
        let g = Graph::complete(2).unwrap();
        let proto = ProtocolA::new(n);
        let family = vec![
            Run::good(&g, n),
            {
                let mut r = Run::good(&g, n);
                r.cut_from_round(Round::new(1));
                r
            },
            {
                let mut r = Run::good(&g, n);
                r.cut_from_round(Round::new(3));
                r
            },
        ];
        let (worst, reports) = worst_disagreement(&proto, &g, &family, SimConfig::new(1500, 17));
        assert_eq!(worst, 2, "the mid-chain cut must be worst");
        assert!(reports[0].disagreement().point() < 1e-9);
        assert!(reports[1].disagreement().point() < 1e-9);
        assert!(reports[2].disagreement().consistent_with_z(0.25, 4.0));
    }

    #[test]
    fn weak_adversary_sampler_integration() {
        let g = Graph::complete(2).unwrap();
        let proto = ProtocolS::new(0.25);
        let sampler = RandomDrop::new(&g, 8, 0.2);
        let report = simulate(&proto, &g, &sampler, SimConfig::new(800, 19));
        // Liveness should be substantial and disagreement far below ε.
        assert!(report.liveness().point() > 0.5, "{report}");
        assert!(report.disagreement().point() < 0.25, "{report}");
        // ML varies across sampled runs.
        assert!(report.ml.std_dev() > 0.0);
    }
}
