//! Adaptive adversaries — and why they don't help.
//!
//! The paper's strong adversary picks a run up front. A seemingly stronger
//! adversary decides round by round which messages to destroy, *adaptively*.
//! But the model hides message contents (footnote 3: the adversary "has no
//! access to message bits", and some form of encryption justifies this), and
//! in the model every process sends to every neighbor every round — so the
//! only observable history is the adversary's **own past choices**. An
//! adaptive metadata-only adversary is therefore just a (possibly
//! randomized) way of choosing a run, and the worst-case bound
//! `U_s(F) = max_R Pr[PA|R]` already covers it:
//!
//! `Pr[PA, adaptive 𝒜] = Σ_R Pr[𝒜 picks R]·Pr[PA|R] ≤ max_R Pr[PA|R]`.
//!
//! [`materialize`] implements the collapse constructively (adaptive strategy
//! → run), and the X2 extension experiment measures several adaptive
//! strategies against Protocol S — none beats `ε`.

use crate::strategy::RunSampler;
use ca_core::graph::Graph;
use ca_core::ids::{ProcessId, Round};
use ca_core::run::Run;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A round-by-round adaptive adversary over message metadata.
///
/// `decide_inputs` is called once (round 0); `decide_round` once per protocol
/// round, in order. Implementations may carry state between calls — that
/// state can only depend on their own earlier decisions, which is exactly
/// the point.
pub trait AdaptiveAdversary {
    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Which processes receive the input signal.
    fn decide_inputs(&mut self, m: usize) -> Vec<bool>;

    /// For each directed slot of this round (in the given order), whether it
    /// is delivered.
    fn decide_round(&mut self, round: Round, slots: &[(ProcessId, ProcessId)]) -> Vec<bool>;
}

/// Collapses an adaptive adversary into the run it chooses — the
/// constructive form of "adaptivity without bit access adds nothing".
///
/// # Panics
///
/// Panics if the adversary returns decision vectors of the wrong length.
pub fn materialize<A: AdaptiveAdversary + ?Sized>(adversary: &mut A, graph: &Graph, n: u32) -> Run {
    let mut run = Run::empty(graph.len(), n);
    let inputs = adversary.decide_inputs(graph.len());
    assert_eq!(inputs.len(), graph.len(), "input decision length mismatch");
    for (i, deliver) in graph.vertices().zip(&inputs) {
        if *deliver {
            run.add_input(i);
        }
    }
    let slots: Vec<(ProcessId, ProcessId)> = graph.directed_edges().collect();
    for r in Round::protocol_rounds(n) {
        let decisions = adversary.decide_round(r, &slots);
        assert_eq!(
            decisions.len(),
            slots.len(),
            "round decision length mismatch"
        );
        for ((from, to), deliver) in slots.iter().zip(&decisions) {
            if *deliver {
                run.add_message(*from, *to, r);
            }
        }
    }
    run
}

/// Wraps an adaptive adversary (plus a seed schedule) as a [`RunSampler`]:
/// each trial materializes a fresh copy — the distribution-over-runs view.
#[derive(Clone, Debug)]
pub struct AdaptiveSampler<F> {
    graph: Graph,
    n: u32,
    make: F,
    label: &'static str,
}

impl<F, A> AdaptiveSampler<F>
where
    F: Fn(u64) -> A + Sync,
    A: AdaptiveAdversary,
{
    /// Creates a sampler that builds a fresh adversary per trial from a seed.
    pub fn new(graph: Graph, n: u32, label: &'static str, make: F) -> Self {
        AdaptiveSampler {
            graph,
            n,
            make,
            label,
        }
    }
}

impl<F, A> RunSampler for AdaptiveSampler<F>
where
    F: Fn(u64) -> A + Sync,
    A: AdaptiveAdversary,
{
    fn describe(&self) -> String {
        format!("adaptive({})", self.label)
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Run {
        let mut adversary = (self.make)(rng.gen());
        materialize(&mut adversary, &self.graph, self.n)
    }
}

/// Adaptive strategy: deliver everything until a *randomly drawn* cut round,
/// then destroy everything — the randomized version of the prefix cut.
#[derive(Clone, Debug)]
pub struct RandomizedCut {
    cut: u32,
}

impl RandomizedCut {
    /// Draws the cut uniformly from `1..=n+1` (`n+1` = never cut).
    pub fn new(n: u32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        RandomizedCut {
            cut: rng.gen_range(1..=n + 1),
        }
    }
}

impl AdaptiveAdversary for RandomizedCut {
    fn name(&self) -> &'static str {
        "randomized-cut"
    }

    fn decide_inputs(&mut self, m: usize) -> Vec<bool> {
        vec![true; m]
    }

    fn decide_round(&mut self, round: Round, slots: &[(ProcessId, ProcessId)]) -> Vec<bool> {
        vec![round.get() < self.cut; slots.len()]
    }
}

/// Adaptive strategy: a "gambler" that delivers rounds until it has let `k`
/// full rounds through, then flips increasingly biased coins to decide when
/// to strike, destroying everything afterwards. Its state is its own history
/// — the most an adaptive metadata-only adversary can use.
#[derive(Clone, Debug)]
pub struct Gambler {
    rng: StdRng,
    free_rounds: u32,
    struck: bool,
}

impl Gambler {
    /// Creates the gambler; it never strikes during the first `free_rounds`.
    pub fn new(free_rounds: u32, seed: u64) -> Self {
        Gambler {
            rng: StdRng::seed_from_u64(seed),
            free_rounds,
            struck: false,
        }
    }
}

impl AdaptiveAdversary for Gambler {
    fn name(&self) -> &'static str {
        "gambler"
    }

    fn decide_inputs(&mut self, m: usize) -> Vec<bool> {
        vec![true; m]
    }

    fn decide_round(&mut self, round: Round, slots: &[(ProcessId, ProcessId)]) -> Vec<bool> {
        if self.struck {
            return vec![false; slots.len()];
        }
        if round.get() > self.free_rounds {
            // Strike probability grows with how long it has already waited.
            let p = (f64::from(round.get() - self.free_rounds) * 0.15).min(0.9);
            if self.rng.gen_bool(p) {
                self.struck = true;
                return vec![false; slots.len()];
            }
        }
        vec![true; slots.len()]
    }
}

/// Adaptive strategy: destroys exactly one *random link direction* per round
/// after a grace period, rotating targets based on its own history.
#[derive(Clone, Debug)]
pub struct LinkChopper {
    rng: StdRng,
    grace: u32,
}

impl LinkChopper {
    /// Creates the chopper with a grace period of delivered rounds.
    pub fn new(grace: u32, seed: u64) -> Self {
        LinkChopper {
            rng: StdRng::seed_from_u64(seed),
            grace,
        }
    }
}

impl AdaptiveAdversary for LinkChopper {
    fn name(&self) -> &'static str {
        "link-chopper"
    }

    fn decide_inputs(&mut self, m: usize) -> Vec<bool> {
        vec![true; m]
    }

    fn decide_round(&mut self, round: Round, slots: &[(ProcessId, ProcessId)]) -> Vec<bool> {
        if round.get() <= self.grace || slots.is_empty() {
            return vec![true; slots.len()];
        }
        let victim = self.rng.gen_range(0..slots.len());
        (0..slots.len()).map(|k| k != victim).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn materialize_randomized_cut_is_a_prefix_cut() {
        let g = Graph::complete(2).unwrap();
        let n = 5;
        for seed in 0..20u64 {
            let mut adv = RandomizedCut::new(n, seed);
            let run = materialize(&mut adv, &g, n);
            run.validate(&g).unwrap();
            // Prefix structure: if round r has any delivery, all rounds < r are full.
            let full_round = |r: u32| run.messages_in_round(Round::new(r)).count() == 2;
            let mut seen_empty = false;
            for r in 1..=n {
                if full_round(r) {
                    assert!(!seen_empty, "non-prefix delivery pattern (seed {seed})");
                } else {
                    assert_eq!(run.messages_in_round(Round::new(r)).count(), 0);
                    seen_empty = true;
                }
            }
        }
    }

    #[test]
    fn gambler_eventually_strikes_and_stays_struck() {
        let g = Graph::complete(2).unwrap();
        let mut adv = Gambler::new(2, 7);
        let run = materialize(&mut adv, &g, 30);
        // Find the strike point; everything after must be destroyed.
        let mut dead = false;
        for r in 1..=30u32 {
            let count = run.messages_in_round(Round::new(r)).count();
            if dead {
                assert_eq!(count, 0, "gambler resurrected at round {r}");
            } else if count == 0 {
                dead = true;
            }
        }
        assert!(dead, "the gambler should strike within 30 rounds");
    }

    #[test]
    fn link_chopper_removes_one_slot_per_round_after_grace() {
        let g = Graph::complete(3).unwrap();
        let mut adv = LinkChopper::new(2, 3);
        let run = materialize(&mut adv, &g, 6);
        for r in 1..=2u32 {
            assert_eq!(run.messages_in_round(Round::new(r)).count(), 6);
        }
        for r in 3..=6u32 {
            assert_eq!(run.messages_in_round(Round::new(r)).count(), 5);
        }
    }

    #[test]
    fn adaptive_sampler_produces_valid_runs() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let g = Graph::complete(2).unwrap();
        let sampler = AdaptiveSampler::new(g.clone(), 4, "gambler", |seed| Gambler::new(1, seed));
        assert!(sampler.describe().contains("gambler"));
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            sampler.sample(&mut rng).validate(&g).unwrap();
        }
    }
}
