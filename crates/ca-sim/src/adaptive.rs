//! Adaptive adversaries — and why they don't help.
//!
//! The paper's strong adversary picks a run up front. A seemingly stronger
//! adversary decides round by round which messages to destroy, *adaptively*.
//! But the model hides message contents (footnote 3: the adversary "has no
//! access to message bits", and some form of encryption justifies this), and
//! in the model every process sends to every neighbor every round — so the
//! only observable history is the adversary's **own past choices**. An
//! adaptive metadata-only adversary is therefore just a (possibly
//! randomized) way of choosing a run, and the worst-case bound
//! `U_s(F) = max_R Pr[PA|R]` already covers it:
//!
//! `Pr[PA, adaptive 𝒜] = Σ_R Pr[𝒜 picks R]·Pr[PA|R] ≤ max_R Pr[PA|R]`.
//!
//! [`materialize`] implements the collapse constructively (adaptive strategy
//! → run), and the X2 extension experiment measures several adaptive
//! strategies against Protocol S — none beats `ε`.

use crate::strategy::RunSampler;
use ca_core::graph::Graph;
use ca_core::ids::{ProcessId, Round};
use ca_core::level::{min_modified_level_into, LevelScratch};
use ca_core::run::Run;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A round-by-round adaptive adversary over message metadata.
///
/// `decide_inputs` is called once (round 0); `decide_round` once per protocol
/// round, in order. Implementations may carry state between calls — that
/// state can only depend on their own earlier decisions, which is exactly
/// the point.
pub trait AdaptiveAdversary {
    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Which processes receive the input signal.
    fn decide_inputs(&mut self, m: usize) -> Vec<bool>;

    /// For each directed slot of this round (in the given order), whether it
    /// is delivered.
    fn decide_round(&mut self, round: Round, slots: &[(ProcessId, ProcessId)]) -> Vec<bool>;
}

/// Collapses an adaptive adversary into the run it chooses — the
/// constructive form of "adaptivity without bit access adds nothing".
///
/// # Panics
///
/// Panics if the adversary returns decision vectors of the wrong length.
pub fn materialize<A: AdaptiveAdversary + ?Sized>(adversary: &mut A, graph: &Graph, n: u32) -> Run {
    let mut run = Run::empty(graph.len(), n);
    let inputs = adversary.decide_inputs(graph.len());
    assert_eq!(inputs.len(), graph.len(), "input decision length mismatch");
    for (i, deliver) in graph.vertices().zip(&inputs) {
        if *deliver {
            run.add_input(i);
        }
    }
    let slots: Vec<(ProcessId, ProcessId)> = graph.directed_edges().collect();
    for r in Round::protocol_rounds(n) {
        let decisions = adversary.decide_round(r, &slots);
        assert_eq!(
            decisions.len(),
            slots.len(),
            "round decision length mismatch"
        );
        for ((from, to), deliver) in slots.iter().zip(&decisions) {
            if *deliver {
                run.add_message(*from, *to, r);
            }
        }
    }
    run
}

/// Wraps an adaptive adversary (plus a seed schedule) as a [`RunSampler`]:
/// each trial materializes a fresh copy — the distribution-over-runs view.
#[derive(Clone, Debug)]
pub struct AdaptiveSampler<F> {
    graph: Graph,
    n: u32,
    make: F,
    label: &'static str,
}

impl<F, A> AdaptiveSampler<F>
where
    F: Fn(u64) -> A + Sync,
    A: AdaptiveAdversary,
{
    /// Creates a sampler that builds a fresh adversary per trial from a seed.
    pub fn new(graph: Graph, n: u32, label: &'static str, make: F) -> Self {
        AdaptiveSampler {
            graph,
            n,
            make,
            label,
        }
    }
}

impl<F, A> RunSampler for AdaptiveSampler<F>
where
    F: Fn(u64) -> A + Sync,
    A: AdaptiveAdversary,
{
    fn describe(&self) -> String {
        format!("adaptive({})", self.label)
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Run {
        let mut adversary = (self.make)(rng.gen());
        materialize(&mut adversary, &self.graph, self.n)
    }
}

/// Adaptive strategy: deliver everything until a *randomly drawn* cut round,
/// then destroy everything — the randomized version of the prefix cut.
#[derive(Clone, Debug)]
pub struct RandomizedCut {
    cut: u32,
}

impl RandomizedCut {
    /// Draws the cut uniformly from `1..=n+1` (`n+1` = never cut).
    pub fn new(n: u32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        RandomizedCut {
            cut: rng.gen_range(1..=n + 1),
        }
    }
}

impl AdaptiveAdversary for RandomizedCut {
    fn name(&self) -> &'static str {
        "randomized-cut"
    }

    fn decide_inputs(&mut self, m: usize) -> Vec<bool> {
        vec![true; m]
    }

    fn decide_round(&mut self, round: Round, slots: &[(ProcessId, ProcessId)]) -> Vec<bool> {
        vec![round.get() < self.cut; slots.len()]
    }
}

/// Adaptive strategy: a "gambler" that delivers rounds until it has let `k`
/// full rounds through, then flips increasingly biased coins to decide when
/// to strike, destroying everything afterwards. Its state is its own history
/// — the most an adaptive metadata-only adversary can use.
#[derive(Clone, Debug)]
pub struct Gambler {
    rng: StdRng,
    free_rounds: u32,
    struck: bool,
}

impl Gambler {
    /// Creates the gambler; it never strikes during the first `free_rounds`.
    pub fn new(free_rounds: u32, seed: u64) -> Self {
        Gambler {
            rng: StdRng::seed_from_u64(seed),
            free_rounds,
            struck: false,
        }
    }
}

impl AdaptiveAdversary for Gambler {
    fn name(&self) -> &'static str {
        "gambler"
    }

    fn decide_inputs(&mut self, m: usize) -> Vec<bool> {
        vec![true; m]
    }

    fn decide_round(&mut self, round: Round, slots: &[(ProcessId, ProcessId)]) -> Vec<bool> {
        if self.struck {
            return vec![false; slots.len()];
        }
        if round.get() > self.free_rounds {
            // Strike probability grows with how long it has already waited.
            let p = (f64::from(round.get() - self.free_rounds) * 0.15).min(0.9);
            if self.rng.gen_bool(p) {
                self.struck = true;
                return vec![false; slots.len()];
            }
        }
        vec![true; slots.len()]
    }
}

/// Adaptive strategy: destroys exactly one *random link direction* per round
/// after a grace period, rotating targets based on its own history.
#[derive(Clone, Debug)]
pub struct LinkChopper {
    rng: StdRng,
    grace: u32,
}

impl LinkChopper {
    /// Creates the chopper with a grace period of delivered rounds.
    pub fn new(grace: u32, seed: u64) -> Self {
        LinkChopper {
            rng: StdRng::seed_from_u64(seed),
            grace,
        }
    }
}

impl AdaptiveAdversary for LinkChopper {
    fn name(&self) -> &'static str {
        "link-chopper"
    }

    fn decide_inputs(&mut self, m: usize) -> Vec<bool> {
        vec![true; m]
    }

    fn decide_round(&mut self, round: Round, slots: &[(ProcessId, ProcessId)]) -> Vec<bool> {
        if round.get() <= self.grace || slots.is_empty() {
            return vec![true; slots.len()];
        }
        let victim = self.rng.gen_range(0..slots.len());
        (0..slots.len()).map(|k| k != victim).collect()
    }
}

/// Adaptive strategy: the min-level hunter. It tracks the run built from
/// its **own past choices**, recomputes the minimum modified level before
/// every round, and strikes — destroying everything forever — the moment
/// that level reaches `target`.
///
/// This is the online form of the paper's worst case: conditioning on the
/// observed min-level state is the most a metadata-only adversary can do,
/// and on a complete graph the strategy materializes to exactly the prefix
/// cut at round `target + 1` (`ML(R) = target`), the deepest point on the
/// `L = U·ML(R)` tradeoff line the adversary can force while keeping the
/// run's level at `target`. With `target = 1` the induced liveness is the
/// floor `ε` — adaptivity rediscovers, but cannot beat, the offline bound.
#[derive(Debug)]
pub struct MinLevelCut {
    graph: Graph,
    target: u32,
    run: Run,
    scratch: LevelScratch,
    struck: bool,
}

impl MinLevelCut {
    /// Creates the hunter for runs of horizon `n`; it strikes once the
    /// observed min modified level reaches `target`.
    pub fn new(graph: Graph, n: u32, target: u32) -> Self {
        let run = Run::empty(graph.len(), n);
        MinLevelCut {
            graph,
            target,
            run,
            scratch: LevelScratch::new(),
            struck: false,
        }
    }

    /// Whether the strike has happened yet.
    pub fn struck(&self) -> bool {
        self.struck
    }
}

impl AdaptiveAdversary for MinLevelCut {
    fn name(&self) -> &'static str {
        "min-level-cut"
    }

    fn decide_inputs(&mut self, m: usize) -> Vec<bool> {
        debug_assert_eq!(m, self.graph.len(), "graph/model size mismatch");
        for i in self.graph.vertices() {
            self.run.add_input(i);
        }
        vec![true; m]
    }

    fn decide_round(&mut self, round: Round, slots: &[(ProcessId, ProcessId)]) -> Vec<bool> {
        if !self.struck {
            // The run-so-far has nothing past the previous round, so its min
            // modified level is exactly what the protocol ends up with if
            // the adversary strikes *now*.
            let observed = min_modified_level_into(&self.run, &mut self.scratch);
            if observed >= self.target {
                self.struck = true;
            }
        }
        if self.struck {
            return vec![false; slots.len()];
        }
        for (from, to) in slots {
            self.run.add_message(*from, *to, round);
        }
        vec![true; slots.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn materialize_randomized_cut_is_a_prefix_cut() {
        let g = Graph::complete(2).unwrap();
        let n = 5;
        for seed in 0..20u64 {
            let mut adv = RandomizedCut::new(n, seed);
            let run = materialize(&mut adv, &g, n);
            run.validate(&g).unwrap();
            // Prefix structure: if round r has any delivery, all rounds < r are full.
            let full_round = |r: u32| run.messages_in_round(Round::new(r)).count() == 2;
            let mut seen_empty = false;
            for r in 1..=n {
                if full_round(r) {
                    assert!(!seen_empty, "non-prefix delivery pattern (seed {seed})");
                } else {
                    assert_eq!(run.messages_in_round(Round::new(r)).count(), 0);
                    seen_empty = true;
                }
            }
        }
    }

    #[test]
    fn gambler_eventually_strikes_and_stays_struck() {
        let g = Graph::complete(2).unwrap();
        let mut adv = Gambler::new(2, 7);
        let run = materialize(&mut adv, &g, 30);
        // Find the strike point; everything after must be destroyed.
        let mut dead = false;
        for r in 1..=30u32 {
            let count = run.messages_in_round(Round::new(r)).count();
            if dead {
                assert_eq!(count, 0, "gambler resurrected at round {r}");
            } else if count == 0 {
                dead = true;
            }
        }
        assert!(dead, "the gambler should strike within 30 rounds");
    }

    #[test]
    fn link_chopper_removes_one_slot_per_round_after_grace() {
        let g = Graph::complete(3).unwrap();
        let mut adv = LinkChopper::new(2, 3);
        let run = materialize(&mut adv, &g, 6);
        for r in 1..=2u32 {
            assert_eq!(run.messages_in_round(Round::new(r)).count(), 6);
        }
        for r in 3..=6u32 {
            assert_eq!(run.messages_in_round(Round::new(r)).count(), 5);
        }
    }

    #[test]
    fn min_level_cut_materializes_to_the_prefix_cut() {
        use ca_core::level::modified_levels;
        let g = Graph::complete(2).unwrap();
        let n = 6;
        for target in 0..=n + 1 {
            let mut adv = MinLevelCut::new(g.clone(), n, target);
            let run = materialize(&mut adv, &g, n);
            run.validate(&g).unwrap();
            // On a complete graph the hunter is exactly the prefix cut at
            // round target + 1 (or the good run when it never strikes).
            let mut expected = Run::good(&g, n);
            if target <= n {
                expected.cut_from_round(Round::new(target + 1));
            }
            assert_eq!(run, expected, "target {target}");
            let ml = modified_levels(&run).min_level();
            assert_eq!(ml, target.min(n), "target {target}");
            // `target = n` is only *observed* after the last round, when no
            // decision remains to strike on.
            assert_eq!(adv.struck(), target < n, "target {target}");
        }
    }

    #[test]
    fn min_level_cut_on_larger_graphs_stays_valid() {
        use ca_core::level::modified_levels;
        let g = Graph::complete(3).unwrap();
        let mut adv = MinLevelCut::new(g.clone(), 8, 3);
        assert_eq!(adv.name(), "min-level-cut");
        let run = materialize(&mut adv, &g, 8);
        run.validate(&g).unwrap();
        assert_eq!(modified_levels(&run).min_level(), 3);
    }

    #[test]
    fn adaptive_sampler_produces_valid_runs() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let g = Graph::complete(2).unwrap();
        let sampler = AdaptiveSampler::new(g.clone(), 4, "gambler", |seed| Gambler::new(1, seed));
        assert!(sampler.describe().contains("gambler"));
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            sampler.sample(&mut rng).validate(&g).unwrap();
        }
    }
}
