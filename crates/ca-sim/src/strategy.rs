//! Adversary strategies: run samplers and structured run families.
//!
//! The strong adversary chooses a single worst-case run; the weak adversary
//! of Section 8 *samples* runs (each message destroyed independently with
//! probability `p`). Both fit one abstraction: a [`RunSampler`] produces the
//! run for each Monte Carlo trial. Deterministic strategies are samplers
//! that ignore the RNG; families of candidate worst-case runs are provided
//! for exhaustive search ([`cut_family`], [`single_drop_family`]).

use ca_core::adversary::prefix_cut_runs;
use ca_core::graph::Graph;
use ca_core::ids::Round;
use ca_core::run::{MsgSlot, Run};
use rand::Rng;
use std::fmt::Debug;

/// A source of runs, one per Monte Carlo trial.
pub trait RunSampler: Sync {
    /// A short description for reports.
    fn describe(&self) -> String;

    /// Produces the run for one trial.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Run;

    /// Writes the run for one trial into `run`, overwriting whatever it
    /// held. Semantically identical to `*run = self.sample(rng)` — same run,
    /// same RNG draws in the same order — but implementations can reuse
    /// `run`'s buffers instead of allocating a fresh `Run` per trial. The
    /// Monte Carlo engine calls this with one scratch run per worker.
    fn sample_into<R: Rng + ?Sized>(&self, run: &mut Run, rng: &mut R) {
        *run = self.sample(rng);
    }

    /// [`RunSampler::sample_into`] reporting sampling counters (runs drawn,
    /// slots flipped, overflow-vector hits) to an observability sink.
    ///
    /// Produces exactly the run and RNG draws of [`RunSampler::sample_into`];
    /// the default implementation records only the sample count, and
    /// randomized samplers override it to attribute their slot flips too.
    fn sample_into_observed<R: Rng + ?Sized>(
        &self,
        run: &mut Run,
        rng: &mut R,
        obs: &ca_obs::Metrics,
    ) {
        self.sample_into(run, rng);
        obs.inc(ca_obs::CounterId::RunSamples);
        obs.add(
            ca_obs::CounterId::RunOverflowSlots,
            run.overflow_slot_count() as u64,
        );
    }

    /// The constant run this sampler always produces, if any.
    ///
    /// Returning `Some` promises that [`RunSampler::sample`] returns a clone
    /// of exactly this run on every call **and never touches the RNG** — the
    /// Monte Carlo engine then skips the per-trial clone and hoists
    /// run-derived quantities (like `ML(R)`) out of the trial loop without
    /// changing any reported number. Samplers with any randomness must keep
    /// the default `None`.
    fn fixed_run(&self) -> Option<&Run> {
        None
    }

    /// This sampler's bit-sliced description, if it has one.
    ///
    /// Returning `Some` promises that the returned [`SlicedSampler`]
    /// reproduces [`RunSampler::sample`] *exactly*: the same per-trial run
    /// distribution from the same RNG draws in the same order (the
    /// per-variant contracts are on the enum). The Monte Carlo engine uses
    /// it to drive 64 trials per pass through the sliced executor without
    /// materializing a `Run` per trial; samplers that randomize inputs,
    /// adapt to history, or otherwise do not fit the base-run-plus-lane-mask
    /// shape must keep the default `None` (forcing the scalar path).
    fn sliced(&self) -> Option<SlicedSampler<'_>> {
        None
    }
}

/// A sampler's bit-sliced description: how the 64-lane engine reproduces
/// its per-trial runs as lane masks over one shared base run.
#[derive(Clone, Copy, Debug)]
pub enum SlicedSampler<'a> {
    /// Every trial executes exactly this run, with no RNG draws.
    Fixed(&'a Run),
    /// Every trial starts from `base` and destroys each of its delivery
    /// slots independently with probability `p`, drawing exactly one
    /// `gen_bool(p)` coin per slot in canonical `(from, to, round)` slot
    /// order — the scalar draw-order contract of [`RandomDrop`].
    IidDrop {
        /// The run trials start from.
        base: &'a Run,
        /// The per-slot destruction probability.
        p: f64,
    },
}

impl<'a> SlicedSampler<'a> {
    /// The base run every lane starts from.
    pub fn base_run(&self) -> &'a Run {
        match self {
            SlicedSampler::Fixed(run) => run,
            SlicedSampler::IidDrop { base, .. } => base,
        }
    }
}

/// Always the same run (a deterministic, oblivious adversary).
#[derive(Clone, Debug)]
pub struct FixedRun {
    run: Run,
}

impl FixedRun {
    /// Wraps a fixed run.
    pub fn new(run: Run) -> Self {
        FixedRun { run }
    }

    /// The wrapped run.
    pub fn run(&self) -> &Run {
        &self.run
    }
}

impl RunSampler for FixedRun {
    fn describe(&self) -> String {
        format!("fixed({})", self.run)
    }

    fn sample<R: Rng + ?Sized>(&self, _rng: &mut R) -> Run {
        self.run.clone()
    }

    fn sample_into<R: Rng + ?Sized>(&self, run: &mut Run, _rng: &mut R) {
        run.clone_from(&self.run);
    }

    fn fixed_run(&self) -> Option<&Run> {
        Some(&self.run)
    }

    fn sliced(&self) -> Option<SlicedSampler<'_>> {
        Some(SlicedSampler::Fixed(&self.run))
    }
}

/// The weak adversary of Section 8: starting from a base run (default: the
/// good run), each delivered message is destroyed independently with
/// probability `p`. Inputs are left untouched.
#[derive(Clone, Debug)]
pub struct RandomDrop {
    base: Run,
    /// The base run's slots in canonical order, cached so each trial draws
    /// its coins over a flat list instead of re-walking the bit matrix.
    slots: Vec<MsgSlot>,
    p: f64,
}

impl RandomDrop {
    /// Weak adversary over the good run of `graph` with horizon `n`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn new(graph: &Graph, n: u32, p: f64) -> Self {
        Self::over(Run::good(graph, n), p)
    }

    /// Weak adversary over an arbitrary base run.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn over(base: Run, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "drop probability must be in [0,1]"
        );
        let slots = base.messages().collect();
        RandomDrop { base, slots, p }
    }

    /// The drop probability.
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl RunSampler for RandomDrop {
    fn describe(&self) -> String {
        format!("random-drop(p={})", self.p)
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Run {
        let mut run = self.base.clone();
        self.drop_slots(&mut run, rng);
        run
    }

    fn sample_into<R: Rng + ?Sized>(&self, run: &mut Run, rng: &mut R) {
        run.clone_from(&self.base);
        self.drop_slots(run, rng);
    }

    fn sample_into_observed<R: Rng + ?Sized>(
        &self,
        run: &mut Run,
        rng: &mut R,
        obs: &ca_obs::Metrics,
    ) {
        run.clone_from(&self.base);
        let flipped = self.drop_slots(run, rng);
        obs.inc(ca_obs::CounterId::RunSamples);
        obs.add(ca_obs::CounterId::RunSlotsFlipped, flipped);
        obs.add(
            ca_obs::CounterId::RunOverflowSlots,
            run.overflow_slot_count() as u64,
        );
    }

    fn sliced(&self) -> Option<SlicedSampler<'_>> {
        // `drop_slots` draws one coin per canonical slot, which is exactly
        // the IidDrop contract; inputs are untouched, so the base run's
        // `I(R)` is shared by every lane.
        Some(SlicedSampler::IidDrop {
            base: &self.base,
            p: self.p,
        })
    }
}

impl RandomDrop {
    /// Draws one destroy/keep coin per base slot in canonical slot order —
    /// the draw-order contract the determinism goldens pin down. Returns the
    /// number of slots destroyed.
    fn drop_slots<R: Rng + ?Sized>(&self, run: &mut Run, rng: &mut R) -> u64 {
        let mut flipped = 0;
        for s in &self.slots {
            if rng.gen_bool(self.p) && run.remove_message(s.from, s.to, s.round) {
                flipped += 1;
            }
        }
        flipped
    }
}

/// A fully random adversary: inputs kept with probability `input_keep`,
/// messages kept with probability `msg_keep`. Used for randomized search
/// over the whole run space.
#[derive(Clone, Debug)]
pub struct RandomRun {
    graph: Graph,
    base: Run,
    /// The good run's slots in canonical order (see [`RandomDrop::slots`]).
    slots: Vec<MsgSlot>,
    input_keep: f64,
    msg_keep: f64,
}

impl RandomRun {
    /// Creates the sampler.
    ///
    /// # Panics
    ///
    /// Panics if either probability is outside `[0, 1]`.
    pub fn new(graph: Graph, n: u32, input_keep: f64, msg_keep: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&input_keep),
            "input_keep must be in [0,1]"
        );
        assert!((0.0..=1.0).contains(&msg_keep), "msg_keep must be in [0,1]");
        let base = Run::good(&graph, n);
        let slots = base.messages().collect();
        RandomRun {
            graph,
            base,
            slots,
            input_keep,
            msg_keep,
        }
    }
}

impl RunSampler for RandomRun {
    fn describe(&self) -> String {
        format!(
            "random-run(inputs~{}, msgs~{})",
            self.input_keep, self.msg_keep
        )
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Run {
        let mut run = self.base.clone();
        self.thin(&mut run, rng);
        run
    }

    fn sample_into<R: Rng + ?Sized>(&self, run: &mut Run, rng: &mut R) {
        run.clone_from(&self.base);
        self.thin(run, rng);
    }

    fn sample_into_observed<R: Rng + ?Sized>(
        &self,
        run: &mut Run,
        rng: &mut R,
        obs: &ca_obs::Metrics,
    ) {
        run.clone_from(&self.base);
        let flipped = self.thin(run, rng);
        obs.inc(ca_obs::CounterId::RunSamples);
        obs.add(ca_obs::CounterId::RunSlotsFlipped, flipped);
        obs.add(
            ca_obs::CounterId::RunOverflowSlots,
            run.overflow_slot_count() as u64,
        );
    }
}

impl RandomRun {
    /// Input coins first (in vertex order), then one coin per good-run slot
    /// in canonical slot order — the historical draw order. Returns the
    /// number of message slots destroyed (inputs are not counted).
    fn thin<R: Rng + ?Sized>(&self, run: &mut Run, rng: &mut R) -> u64 {
        for i in self.graph.vertices() {
            if !rng.gen_bool(self.input_keep) {
                run.remove_input(i);
            }
        }
        let mut flipped = 0;
        for s in &self.slots {
            if !rng.gen_bool(self.msg_keep) && run.remove_message(s.from, s.to, s.round) {
                flipped += 1;
            }
        }
        flipped
    }
}

/// The prefix-cut family (full delivery until round `c`, nothing after),
/// `c ∈ 1..=n+1`, plus per-link cut variants: for every directed edge and
/// every round, deliver everything except that link from that round on.
///
/// For the protocols in this paper the worst run is always in this family
/// (the tests cross-check with randomized search).
pub fn cut_family(graph: &Graph, n: u32) -> Vec<Run> {
    let mut runs = prefix_cut_runs(graph, n);
    for (a, b) in graph.directed_edges() {
        for c in 1..=n {
            let mut run = Run::good(graph, n);
            run.cut_link_from_round(a, b, Round::new(c));
            runs.push(run);
        }
    }
    runs
}

/// Crash-stop failure injection: runs where a chosen process "crashes" at a
/// round (all its outgoing messages from that round on are destroyed; it
/// still receives). One run per `(process, crash_round)` pair, plus the good
/// run. Link-failure adversaries subsume crashes, so the paper's bounds must
/// hold here too — the tests and the families in E4 use this to check.
pub fn crash_family(graph: &Graph, n: u32) -> Vec<Run> {
    let mut runs = vec![Run::good(graph, n)];
    for victim in graph.vertices() {
        for crash_at in 1..=n {
            let mut run = Run::good(graph, n);
            for &peer in graph.neighbors(victim) {
                run.cut_link_from_round(victim, peer, Round::new(crash_at));
            }
            runs.push(run);
        }
    }
    runs
}

/// Every run obtained from the good run by destroying exactly one message.
pub fn single_drop_family(graph: &Graph, n: u32) -> Vec<Run> {
    let good = Run::good(graph, n);
    good.messages()
        .map(|s| {
            let mut run = good.clone();
            run.remove_message(s.from, s.to, s.round);
            run
        })
        .collect()
}

/// Runs with inputs restricted to every nonempty subset of a small vertex
/// set, everything delivered. Exercises validity/liveness structure.
pub fn input_subset_family(graph: &Graph, n: u32) -> Vec<Run> {
    let m = graph.len();
    assert!(
        m <= 16,
        "input_subset_family over {m} processes is too large"
    );
    (0u32..(1 << m))
        .map(|mask| {
            let inputs: Vec<_> = graph
                .vertices()
                .filter(|p| mask & (1 << p.index()) != 0)
                .collect();
            Run::good_with_inputs(graph, n, &inputs)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_core::ids::ProcessId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fixed_run_ignores_rng() {
        let g = Graph::complete(2).unwrap();
        let run = Run::good(&g, 2);
        let sampler = FixedRun::new(run.clone());
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(sampler.sample(&mut rng), run);
        assert_eq!(sampler.run(), &run);
        assert!(sampler.describe().starts_with("fixed"));
    }

    #[test]
    fn sliced_descriptions_match_the_samplers() {
        let g = Graph::complete(2).unwrap();
        let run = Run::good(&g, 3);
        let fixed = FixedRun::new(run.clone());
        assert!(matches!(fixed.sliced(), Some(SlicedSampler::Fixed(r)) if *r == run));
        let drop = RandomDrop::new(&g, 3, 0.4);
        match drop.sliced() {
            Some(SlicedSampler::IidDrop { base, p }) => {
                assert_eq!(base, &run);
                assert_eq!(p, 0.4);
            }
            other => panic!("RandomDrop must describe itself as IidDrop, got {other:?}"),
        }
        assert!(
            RandomRun::new(g, 3, 0.8, 0.7).sliced().is_none(),
            "input-randomizing samplers must force the scalar path"
        );
    }

    #[test]
    fn random_drop_rates() {
        let g = Graph::complete(3).unwrap();
        let sampler = RandomDrop::new(&g, 10, 0.3);
        assert_eq!(sampler.p(), 0.3);
        let mut rng = StdRng::seed_from_u64(2);
        let total_slots = Run::good(&g, 10).message_count();
        let mut kept = 0usize;
        let trials = 200;
        for _ in 0..trials {
            kept += sampler.sample(&mut rng).message_count();
        }
        let keep_rate = kept as f64 / (trials * total_slots) as f64;
        assert!((keep_rate - 0.7).abs() < 0.02, "keep rate {keep_rate}");
    }

    #[test]
    fn random_drop_extremes() {
        let g = Graph::complete(2).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(
            RandomDrop::new(&g, 3, 0.0).sample(&mut rng),
            Run::good(&g, 3)
        );
        assert_eq!(
            RandomDrop::new(&g, 3, 1.0).sample(&mut rng).message_count(),
            0
        );
    }

    #[test]
    #[should_panic(expected = "must be in [0,1]")]
    fn random_drop_rejects_bad_p() {
        RandomDrop::new(&Graph::complete(2).unwrap(), 2, 1.5);
    }

    #[test]
    fn random_run_respects_probabilities() {
        let g = Graph::complete(2).unwrap();
        let sampler = RandomRun::new(g, 4, 1.0, 0.0);
        let mut rng = StdRng::seed_from_u64(4);
        let run = sampler.sample(&mut rng);
        assert_eq!(run.input_count(), 2);
        assert_eq!(run.message_count(), 0);
    }

    #[test]
    fn cut_family_contains_prefix_cuts_and_link_cuts() {
        let g = Graph::complete(2).unwrap();
        let n = 3;
        let family = cut_family(&g, n);
        // n+1 prefix cuts + 2 directed edges × n link cuts.
        assert_eq!(family.len(), (n as usize + 1) + 2 * n as usize);
        assert!(family.contains(&Run::good(&g, n)));
    }

    #[test]
    fn crash_family_shape() {
        let g = Graph::complete(3).unwrap();
        let n = 4;
        let family = crash_family(&g, n);
        // good run + 3 processes × 4 crash rounds.
        assert_eq!(family.len(), 1 + 3 * 4);
        // A crash at round 1 silences the victim entirely.
        let victim_silent = &family[1]; // (P0, crash at 1)
        assert!(victim_silent
            .messages()
            .all(|s| s.from != ProcessId::new(0)));
        // The victim still receives.
        assert!(victim_silent.messages().any(|s| s.to == ProcessId::new(0)));
    }

    #[test]
    fn single_drop_family_size() {
        let g = Graph::line(3).unwrap();
        let family = single_drop_family(&g, 2);
        // 4 directed slots per round × 2 rounds = 8 runs, each missing one.
        assert_eq!(family.len(), 8);
        let good_count = Run::good(&g, 2).message_count();
        for run in family {
            assert_eq!(run.message_count(), good_count - 1);
        }
    }

    #[test]
    fn input_subset_family_enumerates_all_masks() {
        let g = Graph::complete(3).unwrap();
        let family = input_subset_family(&g, 2);
        assert_eq!(family.len(), 8);
        assert!(family.iter().any(|r| !r.has_any_input()));
        assert!(family
            .iter()
            .any(|r| r.has_input(ProcessId::new(0)) && r.input_count() == 1));
    }
}
