//! The weak (probabilistic) adversary family for big-graph sweeps.
//!
//! §8's weak adversary destroys messages *randomly* instead of adversarially.
//! [`crate::strategy::RandomDrop`] is its simplest member (iid per-slot loss
//! over a dense [`Run`]); this module generalizes it into a [`WeakAdversary`]
//! driven by a serializable [`LossModel`] — per-link iid loss or a two-state
//! Gilbert–Elliott bursty channel (per Tamir et al.'s unreliable-communication
//! model, PAPERS.md) — and gives it a second, edge-keyed sampling path
//! ([`WeakAdversary::sample_edges_into`]) over [`EdgeRun`] for graphs where
//! the dense `m²`-bit representation is a waste.
//!
//! # Draw-order contract
//!
//! Both sampling paths draw **identical coins in the identical order**:
//! link-major over the directed edges sorted by `(from, to)`, rounds
//! ascending within each link — which over a good base run is exactly the
//! canonical `(from, to, round)` slot order of [`Run::messages`]. For the
//! [`LossModel::Iid`] model this is one `gen_bool(p)` per slot, byte-for-byte
//! the [`crate::strategy::RandomDrop`] contract, so the bit-sliced engine's
//! scalar-oracle byte-identity carries over ([`RunSampler::sliced`] returns
//! `IidDrop`). Gilbert–Elliott draws, per link: one stationarity coin for the
//! initial channel state, then per round one loss coin and one transition
//! coin (a fixed number of draws regardless of outcomes); it has no lane-mask
//! form, so `sliced()` stays `None` and the engine takes the scalar path.
//! `tests` pin the dense and edge-keyed paths against each other per seed.

use crate::strategy::{RunSampler, SlicedSampler};
use ca_core::graph::Graph;
use ca_core::ids::Round;
use ca_core::run::{EdgeRun, MsgSlot, Run};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A per-link message-loss model: the serializable recipe for one weak
/// adversary (embedded in sweep configs and reports).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum LossModel {
    /// Every message destroyed independently with probability `p`.
    Iid {
        /// Per-message destruction probability.
        p: f64,
    },
    /// Two-state Gilbert–Elliott channel per directed link: the link sits in
    /// a `Good` or `Bad` state, loses each round's message with the state's
    /// loss probability, then transitions. Chains start in their stationary
    /// distribution, so the long-run loss rate is
    /// [`LossModel::stationary_loss`] from round 1.
    GilbertElliott {
        /// Loss probability while the link is in the good state.
        loss_good: f64,
        /// Loss probability while the link is in the bad (burst) state.
        loss_bad: f64,
        /// Per-round transition probability good → bad.
        good_to_bad: f64,
        /// Per-round transition probability bad → good.
        bad_to_good: f64,
    },
}

impl LossModel {
    /// The stationary probability of the bad state (`0` for iid).
    pub fn stationary_bad(&self) -> f64 {
        match *self {
            LossModel::Iid { .. } => 0.0,
            LossModel::GilbertElliott {
                good_to_bad,
                bad_to_good,
                ..
            } => good_to_bad / (good_to_bad + bad_to_good),
        }
    }

    /// The long-run per-message loss rate.
    pub fn stationary_loss(&self) -> f64 {
        match *self {
            LossModel::Iid { p } => p,
            LossModel::GilbertElliott {
                loss_good,
                loss_bad,
                ..
            } => {
                let pi_bad = self.stationary_bad();
                (1.0 - pi_bad) * loss_good + pi_bad * loss_bad
            }
        }
    }

    /// A short stable name for tables and reports (e.g. `iid0.05`,
    /// `ge0.01-0.5`).
    pub fn name(&self) -> String {
        match *self {
            LossModel::Iid { p } => format!("iid{p}"),
            LossModel::GilbertElliott {
                loss_good,
                loss_bad,
                ..
            } => format!("ge{loss_good}-{loss_bad}"),
        }
    }

    fn validate(&self) {
        let check = |name: &str, v: f64| {
            assert!((0.0..=1.0).contains(&v), "{name} must be in [0,1], got {v}");
        };
        match *self {
            LossModel::Iid { p } => check("p", p),
            LossModel::GilbertElliott {
                loss_good,
                loss_bad,
                good_to_bad,
                bad_to_good,
            } => {
                check("loss_good", loss_good);
                check("loss_bad", loss_bad);
                check("good_to_bad", good_to_bad);
                check("bad_to_good", bad_to_good);
                assert!(
                    good_to_bad + bad_to_good > 0.0,
                    "Gilbert-Elliott needs at least one nonzero transition rate"
                );
            }
        }
    }
}

/// The weak adversary over the good run of a graph: every input arrives,
/// and each round's message on each directed link is destroyed according to
/// a [`LossModel`].
///
/// Implements [`RunSampler`] (dense path, used by `simulate` and the chaos
/// harness) and additionally offers [`WeakAdversary::sample_edges_into`]
/// (edge-keyed path, used by the `ca sweep` engine at big `m`).
#[derive(Clone, Debug)]
pub struct WeakAdversary {
    /// The dense good run (the `RunSampler` base).
    base: Run,
    /// The edge-keyed good run (the template `edge_template` hands out).
    template: EdgeRun,
    model: LossModel,
}

impl WeakAdversary {
    /// A weak adversary with the given loss model over the good run of
    /// `graph` with horizon `n`.
    ///
    /// # Panics
    ///
    /// Panics if any model probability is outside `[0, 1]`, or if a
    /// Gilbert–Elliott model has both transition rates zero.
    pub fn new(graph: &Graph, n: u32, model: LossModel) -> Self {
        model.validate();
        WeakAdversary {
            base: Run::good(graph, n),
            template: EdgeRun::good(graph, n),
            model,
        }
    }

    /// Shorthand for [`LossModel::Iid`].
    pub fn iid(graph: &Graph, n: u32, p: f64) -> Self {
        Self::new(graph, n, LossModel::Iid { p })
    }

    /// Shorthand for [`LossModel::GilbertElliott`].
    pub fn gilbert_elliott(
        graph: &Graph,
        n: u32,
        loss_good: f64,
        loss_bad: f64,
        good_to_bad: f64,
        bad_to_good: f64,
    ) -> Self {
        Self::new(
            graph,
            n,
            LossModel::GilbertElliott {
                loss_good,
                loss_bad,
                good_to_bad,
                bad_to_good,
            },
        )
    }

    /// The loss model.
    pub fn model(&self) -> &LossModel {
        &self.model
    }

    /// A fresh edge-keyed good run sized for this adversary — the scratch
    /// buffer callers thread through [`WeakAdversary::sample_edges_into`].
    pub fn edge_template(&self) -> EdgeRun {
        self.template.clone()
    }

    /// Writes one trial into the edge-keyed `er`, resetting it to the good
    /// run first. Returns the number of messages destroyed.
    ///
    /// Draws exactly the coins of [`RunSampler::sample_into`] in the same
    /// order (see the module docs), so per-seed the two paths produce the
    /// same run — `tests` pin `er.to_run() == run`.
    pub fn sample_edges_into<R: Rng + ?Sized>(&self, er: &mut EdgeRun, rng: &mut R) -> u64 {
        er.reset_good();
        self.for_each_destroyed(rng, |e, r| {
            er.destroy(e, r);
        })
    }

    /// Draws the trial's coins and reports each destroyed `(edge index,
    /// round)` — the single sampling engine both paths share.
    fn for_each_destroyed<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        mut destroy: impl FnMut(usize, Round),
    ) -> u64 {
        let n = self.template.horizon();
        let mut flipped = 0;
        match self.model {
            LossModel::Iid { p } => {
                for e in 0..self.template.directed_edge_count() {
                    for r in Round::protocol_rounds(n) {
                        if rng.gen_bool(p) {
                            destroy(e, r);
                            flipped += 1;
                        }
                    }
                }
            }
            LossModel::GilbertElliott {
                loss_good,
                loss_bad,
                good_to_bad,
                bad_to_good,
            } => {
                let pi_bad = self.model.stationary_bad();
                for e in 0..self.template.directed_edge_count() {
                    let mut bad = rng.gen_bool(pi_bad);
                    for r in Round::protocol_rounds(n) {
                        let loss = if bad { loss_bad } else { loss_good };
                        if rng.gen_bool(loss) {
                            destroy(e, r);
                            flipped += 1;
                        }
                        bad = if bad {
                            !rng.gen_bool(bad_to_good)
                        } else {
                            rng.gen_bool(good_to_bad)
                        };
                    }
                }
            }
        }
        flipped
    }

    fn drop_into<R: Rng + ?Sized>(&self, run: &mut Run, rng: &mut R) -> u64 {
        let edges = self.template.directed_edges();
        self.for_each_destroyed(rng, |e, r| {
            let (from, to) = edges[e];
            run.remove_message(from, to, r);
        })
    }
}

impl RunSampler for WeakAdversary {
    fn describe(&self) -> String {
        format!("weak({})", self.model.name())
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Run {
        let mut run = self.base.clone();
        self.drop_into(&mut run, rng);
        run
    }

    fn sample_into<R: Rng + ?Sized>(&self, run: &mut Run, rng: &mut R) {
        run.clone_from(&self.base);
        self.drop_into(run, rng);
    }

    fn sample_into_observed<R: Rng + ?Sized>(
        &self,
        run: &mut Run,
        rng: &mut R,
        obs: &ca_obs::Metrics,
    ) {
        run.clone_from(&self.base);
        let flipped = self.drop_into(run, rng);
        obs.inc(ca_obs::CounterId::RunSamples);
        obs.add(ca_obs::CounterId::RunSlotsFlipped, flipped);
        obs.add(
            ca_obs::CounterId::RunOverflowSlots,
            run.overflow_slot_count() as u64,
        );
    }

    fn sliced(&self) -> Option<SlicedSampler<'_>> {
        match self.model {
            // One gen_bool(p) per canonical slot of a good base — exactly the
            // IidDrop lane-mask contract.
            LossModel::Iid { p } => Some(SlicedSampler::IidDrop {
                base: &self.base,
                p,
            }),
            // The per-link Markov chain has no base-run-plus-lane-mask form;
            // force the scalar path.
            LossModel::GilbertElliott { .. } => None,
        }
    }
}

/// The canonical slots of the good run over `graph` — handy for tests that
/// want to cross-check the draw order.
pub fn good_slots(graph: &Graph, n: u32) -> Vec<MsgSlot> {
    Run::good(graph, n).messages().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::BernoulliEstimate;
    use crate::strategy::RandomDrop;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ge_model() -> LossModel {
        LossModel::GilbertElliott {
            loss_good: 0.01,
            loss_bad: 0.5,
            good_to_bad: 0.05,
            bad_to_good: 0.25,
        }
    }

    #[test]
    fn iid_matches_random_drop_coin_for_coin() {
        // WeakAdversary's iid model must be byte-compatible with the existing
        // RandomDrop sampler: same seed, same run.
        let g = Graph::grid(2, 3).unwrap();
        let weak = WeakAdversary::iid(&g, 4, 0.3);
        let old = RandomDrop::new(&g, 4, 0.3);
        for seed in 0..20 {
            let a = weak.sample(&mut StdRng::seed_from_u64(seed));
            let b = old.sample(&mut StdRng::seed_from_u64(seed));
            assert_eq!(a, b, "seed {seed}");
        }
    }

    #[test]
    fn dense_and_edge_paths_agree_per_seed() {
        let g = Graph::ring(5).unwrap();
        for model in [LossModel::Iid { p: 0.2 }, ge_model()] {
            let weak = WeakAdversary::new(&g, 6, model);
            let mut er = weak.edge_template();
            let mut run = Run::empty(1, 0);
            for seed in 0..20 {
                weak.sample_into(&mut run, &mut StdRng::seed_from_u64(seed));
                let dropped = weak.sample_edges_into(&mut er, &mut StdRng::seed_from_u64(seed));
                assert_eq!(er.to_run(), run, "{} seed {seed}", weak.describe());
                assert_eq!(
                    dropped as usize,
                    weak.base.message_count() - run.message_count(),
                    "flip count, seed {seed}"
                );
            }
        }
    }

    #[test]
    fn gilbert_elliott_hits_stationary_loss_rate() {
        // Chains start in the stationary distribution, so the empirical loss
        // rate over many links and rounds must match the closed form at z=4.
        let g = Graph::complete(2).unwrap();
        let n = 500;
        let weak = WeakAdversary::new(&g, n, ge_model());
        let mut er = weak.edge_template();
        let total_slots = weak.template.message_count();
        let mut rng = StdRng::seed_from_u64(0xCE11);
        let mut est = BernoulliEstimate::default();
        for _ in 0..100 {
            let dropped = weak.sample_edges_into(&mut er, &mut rng);
            est.merge(&BernoulliEstimate::new(dropped, total_slots as u64));
        }
        let expected = weak.model().stationary_loss();
        assert!(
            est.consistent_with_z(expected, 4.0),
            "GE loss rate {} inconsistent with stationary {expected}",
            est.point()
        );
        // The closed form itself: pi_bad = 0.05/0.30, loss = (1-pi)*0.01 + pi*0.5.
        let pi = 0.05 / 0.30;
        assert!((expected - ((1.0 - pi) * 0.01 + pi * 0.5)).abs() < 1e-12);
    }

    #[test]
    fn gilbert_elliott_losses_are_bursty() {
        // With a sticky bad state, P(loss at r+1 | loss at r) must exceed the
        // marginal loss rate — that's the whole point of the model.
        let g = Graph::complete(2).unwrap();
        let n = 400;
        let weak = WeakAdversary::new(&g, n, ge_model());
        let mut er = weak.edge_template();
        let mut rng = StdRng::seed_from_u64(7);
        let (mut pair_loss, mut pairs, mut losses, mut slots) = (0u64, 0u64, 0u64, 0u64);
        for _ in 0..50 {
            weak.sample_edges_into(&mut er, &mut rng);
            for e in 0..er.directed_edge_count() {
                for r in 1..n {
                    let a = !er.delivers_edge(e, Round::new(r));
                    let b = !er.delivers_edge(e, Round::new(r + 1));
                    losses += a as u64;
                    slots += 1;
                    if a {
                        pairs += 1;
                        pair_loss += b as u64;
                    }
                }
            }
        }
        let conditional = pair_loss as f64 / pairs as f64;
        let marginal = losses as f64 / slots as f64;
        assert!(
            conditional > 1.5 * marginal,
            "expected bursty losses: P(loss|loss)={conditional:.3} vs marginal={marginal:.3}"
        );
    }

    #[test]
    fn iid_sliced_ge_scalar() {
        let g = Graph::complete(3).unwrap();
        let iid = WeakAdversary::iid(&g, 3, 0.1);
        assert!(matches!(
            iid.sliced(),
            Some(SlicedSampler::IidDrop { p, .. }) if p == 0.1
        ));
        let ge = WeakAdversary::new(&g, 3, ge_model());
        assert!(ge.sliced().is_none());
        assert!(ge.describe().contains("ge0.01-0.5"));
    }

    #[test]
    fn loss_model_serde_round_trips() {
        let models = vec![LossModel::Iid { p: 0.05 }, ge_model()];
        let json = serde::json::to_string(&models).unwrap();
        let back: Vec<LossModel> = serde::json::from_str(&json).unwrap();
        assert_eq!(back, models);
    }

    #[test]
    #[should_panic(expected = "must be in [0,1]")]
    fn rejects_out_of_range_probability() {
        let g = Graph::complete(2).unwrap();
        let _ = WeakAdversary::iid(&g, 2, 1.5);
    }
}
