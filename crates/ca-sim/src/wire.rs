//! Wire-size accounting: how many bytes does a protocol put on each link?
//!
//! The paper measures protocols by rounds and probabilities; a systems
//! implementation also cares about message size. This module computes the
//! serialized size of any `Serialize` message under a simple, deterministic
//! wire format (fixed-width integers, one tag byte per option/variant,
//! 4-byte length prefixes for sequences), without allocating the encoding —
//! a counting `serde` serializer.
//!
//! Used by the bandwidth ablation bench comparing Protocol S's compressed
//! `(count, seen)` messages against the naive full-vector gossip variant.

use serde::ser::{self, Serialize};
use std::fmt;

/// Computes the wire size in bytes of a serializable value.
///
/// # Examples
///
/// ```
/// use ca_sim::wire::wire_size;
/// assert_eq!(wire_size(&42u32).unwrap(), 4);
/// assert_eq!(wire_size(&(1u8, true)).unwrap(), 2);
/// assert_eq!(wire_size(&Some(7u64)).unwrap(), 9); // tag + payload
/// assert_eq!(wire_size(&vec![1u16, 2, 3]).unwrap(), 4 + 6); // len prefix + items
/// ```
///
/// # Errors
///
/// Returns an error only for values whose `Serialize` impl itself fails.
pub fn wire_size<T: Serialize + ?Sized>(value: &T) -> Result<usize, WireError> {
    let mut counter = SizeCounter { bytes: 0 };
    value.serialize(&mut counter)?;
    Ok(counter.bytes)
}

/// Error from size computation (only produced by failing `Serialize` impls).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError(String);

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire size error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

impl ser::Error for WireError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        WireError(msg.to_string())
    }
}

struct SizeCounter {
    bytes: usize,
}

impl SizeCounter {
    fn add(&mut self, n: usize) {
        self.bytes += n;
    }
}

macro_rules! fixed {
    ($method:ident, $ty:ty, $size:expr) => {
        fn $method(self, _v: $ty) -> Result<(), WireError> {
            self.add($size);
            Ok(())
        }
    };
}

impl ser::Serializer for &mut SizeCounter {
    type Ok = ();
    type Error = WireError;
    type SerializeSeq = Self;
    type SerializeTuple = Self;
    type SerializeTupleStruct = Self;
    type SerializeTupleVariant = Self;
    type SerializeMap = Self;
    type SerializeStruct = Self;
    type SerializeStructVariant = Self;

    fixed!(serialize_bool, bool, 1);
    fixed!(serialize_i8, i8, 1);
    fixed!(serialize_i16, i16, 2);
    fixed!(serialize_i32, i32, 4);
    fixed!(serialize_i64, i64, 8);
    fixed!(serialize_i128, i128, 16);
    fixed!(serialize_u8, u8, 1);
    fixed!(serialize_u16, u16, 2);
    fixed!(serialize_u32, u32, 4);
    fixed!(serialize_u64, u64, 8);
    fixed!(serialize_u128, u128, 16);
    fixed!(serialize_f32, f32, 4);
    fixed!(serialize_f64, f64, 8);
    fixed!(serialize_char, char, 4);

    fn serialize_str(self, v: &str) -> Result<(), WireError> {
        self.add(4 + v.len());
        Ok(())
    }

    fn serialize_bytes(self, v: &[u8]) -> Result<(), WireError> {
        self.add(4 + v.len());
        Ok(())
    }

    fn serialize_none(self) -> Result<(), WireError> {
        self.add(1);
        Ok(())
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), WireError> {
        self.add(1);
        value.serialize(self)
    }

    fn serialize_unit(self) -> Result<(), WireError> {
        Ok(())
    }

    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), WireError> {
        Ok(())
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        _variant: &'static str,
    ) -> Result<(), WireError> {
        self.add(1);
        Ok(())
    }

    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), WireError> {
        value.serialize(self)
    }

    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        _variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> Result<(), WireError> {
        self.add(1);
        value.serialize(self)
    }

    fn serialize_seq(self, _len: Option<usize>) -> Result<Self, WireError> {
        self.add(4);
        Ok(self)
    }

    fn serialize_tuple(self, _len: usize) -> Result<Self, WireError> {
        Ok(self)
    }

    fn serialize_tuple_struct(self, _name: &'static str, _len: usize) -> Result<Self, WireError> {
        Ok(self)
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self, WireError> {
        self.add(1);
        Ok(self)
    }

    fn serialize_map(self, _len: Option<usize>) -> Result<Self, WireError> {
        self.add(4);
        Ok(self)
    }

    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Self, WireError> {
        Ok(self)
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self, WireError> {
        self.add(1);
        Ok(self)
    }
}

macro_rules! compound {
    ($trait:path { $($method:ident ( $($arg:tt)* );)* }) => {
        impl $trait for &mut SizeCounter {
            type Ok = ();
            type Error = WireError;
            $(compound!(@method $method ($($arg)*));)*
            fn end(self) -> Result<(), WireError> {
                Ok(())
            }
        }
    };
    (@method $method:ident (value)) => {
        fn $method<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), WireError> {
            value.serialize(&mut **self)
        }
    };
    (@method $method:ident (key value)) => {
        fn $method<T: Serialize + ?Sized>(&mut self, _key: &'static str, value: &T) -> Result<(), WireError> {
            value.serialize(&mut **self)
        }
    };
}

compound!(ser::SerializeSeq {
    serialize_element(value);
});
compound!(ser::SerializeTuple {
    serialize_element(value);
});
compound!(ser::SerializeTupleStruct {
    serialize_field(value);
});
compound!(ser::SerializeTupleVariant {
    serialize_field(value);
});
compound!(ser::SerializeStruct {
    serialize_field(key value);
});
compound!(ser::SerializeStructVariant {
    serialize_field(key value);
});

impl ser::SerializeMap for &mut SizeCounter {
    type Ok = ();
    type Error = WireError;

    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), WireError> {
        key.serialize(&mut **self)
    }

    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), WireError> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<(), WireError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Serialize;

    #[derive(Serialize)]
    struct Msg {
        count: u32,
        valid: bool,
        rfire: Option<f64>,
        seen: Vec<u8>,
    }

    #[test]
    fn primitive_sizes() {
        assert_eq!(wire_size(&true).unwrap(), 1);
        assert_eq!(wire_size(&1u8).unwrap(), 1);
        assert_eq!(wire_size(&1u64).unwrap(), 8);
        assert_eq!(wire_size(&1i128).unwrap(), 16);
        assert_eq!(wire_size(&1.5f64).unwrap(), 8);
        assert_eq!(wire_size(&'x').unwrap(), 4);
        assert_eq!(wire_size("abc").unwrap(), 7);
        assert_eq!(wire_size(&()).unwrap(), 0);
    }

    #[test]
    fn option_and_seq_sizes() {
        assert_eq!(wire_size(&None::<u64>).unwrap(), 1);
        assert_eq!(wire_size(&Some(1u64)).unwrap(), 9);
        assert_eq!(wire_size(&Vec::<u32>::new()).unwrap(), 4);
        assert_eq!(wire_size(&vec![1u32, 2]).unwrap(), 12);
    }

    #[test]
    fn struct_size_is_sum_of_fields() {
        let m = Msg {
            count: 3,
            valid: true,
            rfire: Some(0.5),
            seen: vec![1, 2, 3],
        };
        // 4 + 1 + (1 + 8) + (4 + 3)
        assert_eq!(wire_size(&m).unwrap(), 21);
    }

    #[test]
    fn enum_variants_cost_a_tag() {
        #[derive(Serialize)]
        enum E {
            A,
            B(u16),
        }
        assert_eq!(wire_size(&E::A).unwrap(), 1);
        assert_eq!(wire_size(&E::B(7)).unwrap(), 3);
    }

    #[test]
    fn figure_1_compression_beats_full_vector_gossip() {
        // The ablation headline: Protocol S's (count, seen) message is far
        // smaller than VectorS's full per-process level vector at m = 64.
        use ca_core::graph::Graph;
        use ca_core::ids::ProcessId;
        use ca_core::protocol::{Ctx, Protocol};
        use ca_core::tape::TapeSet;
        use ca_protocols::{ProtocolS, VectorS};
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let g = Graph::complete(64).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let tapes = TapeSet::random(&mut rng, 64, 64);
        let s = ProtocolS::new(0.1);
        let v = VectorS::new(0.1);
        let ctx = Ctx::new(&g, 4, ProcessId::LEADER);
        let mut r1 = tapes.tape(ProcessId::LEADER).reader();
        let mut r2 = tapes.tape(ProcessId::LEADER).reader();
        let st_s = s.init(ctx, true, &mut r1);
        let st_v = v.init(ctx, true, &mut r2);
        let size_s = wire_size(&s.message(ctx, &st_s, ProcessId::new(1))).unwrap();
        let size_v = wire_size(&v.message(ctx, &st_v, ProcessId::new(1))).unwrap();
        assert!(
            size_v > 2 * size_s,
            "vector {size_v} bytes should dwarf compressed {size_s} bytes"
        );
    }

    #[test]
    fn real_protocol_messages_have_finite_size() {
        use ca_core::bitset::BitSet;
        use ca_protocols::CountingMsg;
        let msg: CountingMsg<f64> = CountingMsg {
            count: 5,
            seen: BitSet::from_iter_with_capacity(8, [0, 3]),
            valid: true,
            token: Some(1.25),
        };
        let size = wire_size(&msg).unwrap();
        assert!(size > 0 && size < 64, "size = {size}");
    }
}
