//! Human-readable execution traces.
//!
//! Renders an [`Execution`] round by round — who received what, how states
//! evolved, who attacked — for the examples and for debugging protocol
//! implementations.

use ca_core::exec::Execution;
use ca_core::graph::Graph;
use ca_core::ids::ProcessId;
use ca_core::protocol::Protocol;
use ca_core::run::Run;
use std::fmt::Write as _;

/// Renders a full execution trace as text.
///
/// The trace lists, per round, each process's received messages and
/// end-of-round state, followed by the output vector and outcome.
pub fn render_trace<P: Protocol>(graph: &Graph, run: &Run, execution: &Execution<P>) -> String {
    let mut out = String::new();
    let n = run.horizon();
    let _ = writeln!(
        out,
        "=== execution: {} processes, N = {n}, |M(R)| = {} ===",
        graph.len(),
        run.message_count()
    );
    let inputs: Vec<String> = run.inputs().map(|p| p.to_string()).collect();
    let _ = writeln!(out, "inputs: [{}]", inputs.join(", "));
    for i in graph.vertices() {
        let _ = writeln!(
            out,
            "round 0  {i}: state = {:?}",
            execution.local(i).states[0]
        );
    }
    for r in 1..=n as usize {
        let _ = writeln!(out, "--- round {r} ---");
        for i in graph.vertices() {
            let local = execution.local(i);
            let rx: Vec<String> = local.received[r]
                .iter()
                .map(|(from, msg)| format!("{from}:{msg:?}"))
                .collect();
            let _ = writeln!(
                out,
                "  {i}: recv [{}] -> state = {:?}",
                rx.join(", "),
                local.states[r]
            );
        }
    }
    let outputs: Vec<String> = graph
        .vertices()
        .map(|i| {
            format!(
                "{i}={}",
                if execution.local(i).output {
                    "ATTACK"
                } else {
                    "hold"
                }
            )
        })
        .collect();
    let _ = writeln!(
        out,
        "outputs: {}  =>  {}",
        outputs.join(" "),
        execution.outcome()
    );
    out
}

/// Renders just the decision line (one-line summary).
pub fn render_decisions<P: Protocol>(execution: &Execution<P>) -> String {
    let marks: String = execution
        .outputs()
        .iter()
        .map(|&o| if o { '1' } else { '0' })
        .collect();
    format!("{} [{}]", execution.outcome(), marks)
}

/// Renders a run as an ASCII space-time diagram: one row per round, one
/// column per process, with the delivered messages of that round listed.
/// Useful for eyeballing adversary strategies.
pub fn render_run(run: &Run) -> String {
    let mut out = String::new();
    let inputs: Vec<String> = run.inputs().map(|p| p.to_string()).collect();
    let _ = writeln!(
        out,
        "run over {} processes, N = {}; inputs -> [{}]",
        run.process_count(),
        run.horizon(),
        inputs.join(", ")
    );
    for r in 1..=run.horizon() {
        let msgs: Vec<String> = run
            .messages_in_round(ca_core::ids::Round::new(r))
            .map(|s| format!("{}→{}", s.from, s.to))
            .collect();
        let _ = writeln!(
            out,
            "  r{r:<3} {}",
            if msgs.is_empty() {
                "(silence)".to_owned()
            } else {
                msgs.join("  ")
            }
        );
    }
    out
}

/// Convenience: which processes attacked.
pub fn attackers<P: Protocol>(execution: &Execution<P>) -> Vec<ProcessId> {
    execution
        .outputs()
        .iter()
        .enumerate()
        .filter(|&(_i, &o)| o)
        .map(|(i, &_o)| ProcessId::new(i as u32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_core::exec::execute;
    use ca_core::run::Run;
    use ca_core::tape::TapeSet;
    use ca_protocols::ProtocolS;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn trace_contains_rounds_and_outcome() {
        let g = Graph::complete(2).unwrap();
        let run = Run::good(&g, 3);
        let proto = ProtocolS::new(1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let tapes = TapeSet::random(&mut rng, 2, 64);
        let ex = execute(&proto, &g, &run, &tapes);
        let trace = render_trace(&g, &run, &ex);
        assert!(trace.contains("--- round 1 ---"));
        assert!(trace.contains("--- round 3 ---"));
        assert!(trace.contains("outputs:"));
        assert!(trace.contains("TA"), "ε = 1 always attacks on the good run");
    }

    #[test]
    fn run_diagram_lists_messages_and_silence() {
        let g = Graph::complete(2).unwrap();
        let mut run = Run::good(&g, 3);
        run.cut_from_round(ca_core::ids::Round::new(3));
        let s = render_run(&run);
        assert!(s.contains("r1"));
        assert!(s.contains("P0→P1"));
        assert!(s.contains("(silence)"), "cut round renders as silence");
        assert!(s.contains("inputs -> [P0, P1]"));
    }

    #[test]
    fn decision_line_and_attackers() {
        let g = Graph::complete(2).unwrap();
        let run = Run::good(&g, 2);
        let proto = ProtocolS::new(1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let tapes = TapeSet::random(&mut rng, 2, 64);
        let ex = execute(&proto, &g, &run, &tapes);
        assert_eq!(render_decisions(&ex), "TA [11]");
        assert_eq!(attackers(&ex), vec![ProcessId::new(0), ProcessId::new(1)]);
    }
}
