//! Statistics for Monte Carlo estimates.
//!
//! The experiments estimate Bernoulli probabilities (disagreement rates,
//! attack rates). [`BernoulliEstimate`] carries the raw tallies and produces
//! point estimates with Wilson score confidence intervals, which behave well
//! at the extreme rates this paper lives at (probabilities like `ε = 10⁻³`).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A Bernoulli proportion estimate: `successes / trials`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BernoulliEstimate {
    /// Number of successes observed.
    pub successes: u64,
    /// Number of trials performed.
    pub trials: u64,
}

impl BernoulliEstimate {
    /// Creates an estimate from raw counts.
    ///
    /// # Panics
    ///
    /// Panics if `successes > trials`.
    pub fn new(successes: u64, trials: u64) -> Self {
        assert!(successes <= trials, "more successes than trials");
        BernoulliEstimate { successes, trials }
    }

    /// The point estimate `successes / trials` (0 if no trials).
    pub fn point(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.successes as f64 / self.trials as f64
        }
    }

    /// The Wilson score interval at `z` standard deviations
    /// (`z = 1.96` ≈ 95%).
    ///
    /// Returns `(lo, hi)`, both in `[0, 1]`. With zero trials returns
    /// `(0, 1)` (no information).
    pub fn wilson_interval(&self, z: f64) -> (f64, f64) {
        if self.trials == 0 {
            return (0.0, 1.0);
        }
        let n = self.trials as f64;
        let p = self.point();
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let center = (p + z2 / (2.0 * n)) / denom;
        let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
        // At the boundary tallies the analytic endpoint is exactly 0 (or 1);
        // pin it so floating-point residue can't exclude the true value.
        let lo = if self.successes == 0 {
            0.0
        } else {
            (center - half).max(0.0)
        };
        let hi = if self.successes == self.trials {
            1.0
        } else {
            (center + half).min(1.0)
        };
        (lo, hi)
    }

    /// The 95% Wilson interval.
    pub fn interval95(&self) -> (f64, f64) {
        self.wilson_interval(1.96)
    }

    /// The standard error of the point estimate.
    pub fn std_error(&self) -> f64 {
        if self.trials == 0 {
            return f64::INFINITY;
        }
        let n = self.trials as f64;
        let p = self.point();
        (p * (1.0 - p) / n).sqrt()
    }

    /// Merges another estimate over the same Bernoulli variable.
    pub fn merge(&mut self, other: &BernoulliEstimate) {
        self.successes += other.successes;
        self.trials += other.trials;
    }

    /// Records one trial.
    pub fn record(&mut self, success: bool) {
        self.trials += 1;
        if success {
            self.successes += 1;
        }
    }

    /// Returns whether `value` lies inside the 95% interval.
    ///
    /// A zero-trial estimate is consistent with **nothing**: its interval is
    /// the vacuous `(0, 1)`, and treating that as agreement would let a
    /// misconfigured experiment (zero trials) silently pass every verdict.
    pub fn consistent_with(&self, value: f64) -> bool {
        self.consistent_with_z(value, 1.96)
    }

    /// Returns whether `value` lies inside the Wilson interval at `z`
    /// standard deviations.
    ///
    /// Pass/fail verdicts aggregated over many independent checks should use
    /// a wide `z` (e.g. 4.0) so the familywise false-positive rate stays
    /// negligible; 95% intervals are for *display*, and with dozens of
    /// checks a few 95% misses are expected by chance.
    ///
    /// Like [`BernoulliEstimate::consistent_with`], returns `false` with
    /// zero trials: no data supports no conclusion.
    pub fn consistent_with_z(&self, value: f64, z: f64) -> bool {
        if self.trials == 0 {
            return false;
        }
        let (lo, hi) = self.wilson_interval(z);
        value >= lo && value <= hi
    }
}

impl fmt::Display for BernoulliEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.trials == 0 {
            // Say "no data" instead of printing the defaulted point 0.0000
            // with the vacuous [0, 1] interval as if it were a measurement.
            return write!(f, "n/a (0/0 trials)");
        }
        let (lo, hi) = self.interval95();
        write!(
            f,
            "{:.4} [{:.4}, {:.4}] ({}/{})",
            self.point(),
            lo,
            hi,
            self.successes,
            self.trials
        )
    }
}

/// A running mean/min/max accumulator for real-valued observations
/// (e.g. final information levels under random drops).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RunningStats {
    count: u64,
    sum: f64,
    sum_sq: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            sum: 0.0,
            sum_sq: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        self.sum_sq += x * x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// The sample variance (unbiased; 0 if fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        let n = self.count as f64;
        ((self.sum_sq - self.sum * self.sum / n) / (n - 1.0)).max(0.0)
    }

    /// The sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+∞` if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-∞` if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator.
    pub fn merge(&mut self, other: &RunningStats) {
        self.count += other.count;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for RunningStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mean={:.4} sd={:.4} min={:.4} max={:.4} (n={})",
            self.mean(),
            self.std_dev(),
            self.min,
            self.max,
            self.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_estimate() {
        let e = BernoulliEstimate::new(25, 100);
        assert!((e.point() - 0.25).abs() < 1e-12);
        assert_eq!(BernoulliEstimate::default().point(), 0.0);
    }

    #[test]
    #[should_panic(expected = "more successes than trials")]
    fn invalid_counts_panic() {
        BernoulliEstimate::new(5, 4);
    }

    #[test]
    fn wilson_interval_contains_point_and_shrinks() {
        let small = BernoulliEstimate::new(5, 20);
        let big = BernoulliEstimate::new(500, 2000);
        let (lo_s, hi_s) = small.interval95();
        let (lo_b, hi_b) = big.interval95();
        assert!(lo_s <= 0.25 && 0.25 <= hi_s);
        assert!(lo_b <= 0.25 && 0.25 <= hi_b);
        assert!(hi_b - lo_b < hi_s - lo_s, "more data, tighter interval");
    }

    #[test]
    fn wilson_interval_extremes_stay_in_unit_range() {
        let zero = BernoulliEstimate::new(0, 50);
        let one = BernoulliEstimate::new(50, 50);
        let (lo, hi) = zero.interval95();
        assert!(lo >= 0.0 && hi > 0.0 && hi < 0.2);
        let (lo, hi) = one.interval95();
        assert!(hi <= 1.0 && lo < 1.0 && lo > 0.8);
        assert_eq!(BernoulliEstimate::default().interval95(), (0.0, 1.0));
    }

    #[test]
    fn record_and_merge() {
        let mut a = BernoulliEstimate::default();
        a.record(true);
        a.record(false);
        let mut b = BernoulliEstimate::new(3, 8);
        b.merge(&a);
        assert_eq!(b, BernoulliEstimate::new(4, 10));
    }

    #[test]
    fn consistency_check() {
        let e = BernoulliEstimate::new(100, 1000);
        assert!(e.consistent_with(0.1));
        assert!(!e.consistent_with(0.5));
    }

    #[test]
    fn zero_trials_are_consistent_with_nothing() {
        // Regression: the pre-fix code fell through to the vacuous (0, 1)
        // interval, so a zero-trial estimate "agreed" with every value and a
        // misconfigured experiment passed all its verdicts.
        let none = BernoulliEstimate::default();
        assert!(!none.consistent_with(0.3));
        assert!(!none.consistent_with_z(0.3, 4.0));
        assert!(!none.consistent_with_z(0.0, 4.0));
    }

    #[test]
    fn zero_trial_display_says_no_data() {
        assert_eq!(BernoulliEstimate::default().to_string(), "n/a (0/0 trials)");
    }

    #[test]
    fn std_error() {
        let e = BernoulliEstimate::new(50, 100);
        assert!((e.std_error() - 0.05).abs() < 1e-12);
        assert!(BernoulliEstimate::default().std_error().is_infinite());
    }

    #[test]
    fn running_stats_basics() {
        let mut s = RunningStats::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert!((s.variance() - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
    }

    #[test]
    fn running_stats_merge() {
        let mut a = RunningStats::new();
        a.record(1.0);
        a.record(2.0);
        let mut b = RunningStats::new();
        b.record(3.0);
        b.record(4.0);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert!((a.mean() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        let e = BernoulliEstimate::new(1, 4);
        assert!(e.to_string().contains("(1/4)"));
        let s = RunningStats::new();
        assert!(s.to_string().contains("n=0"));
    }
}
