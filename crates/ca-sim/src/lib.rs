//! Simulation substrate: adversary strategies, Monte Carlo, statistics.
//!
//! * [`strategy`] — run samplers: fixed runs (oblivious strong adversary),
//!   the weak probabilistic adversary of Section 8, random-run search,
//!   crash-stop injection, and the structured cut families that contain the
//!   worst cases.
//! * [`adaptive`] — round-by-round adaptive adversaries and their collapse
//!   to distributions over runs (footnote 3's regime).
//! * [`chaos`] — generic chaos-campaign machinery: deterministic seed
//!   derivation, order-preserving parallel map, and delta-debugging
//!   (`ddmin`) shrinking of violating inputs.
//! * [`monte_carlo`] — parallel, seed-deterministic estimation of
//!   `Pr[TA|R]`, `Pr[PA|R]`, and per-process decision probabilities.
//! * [`stats`] — Bernoulli estimates with Wilson intervals.
//! * [`trace`] — human-readable execution traces and run diagrams.
//! * [`weak`] — the weak-adversary family for big-graph sweeps: per-link iid
//!   and Gilbert–Elliott bursty loss, with dense and edge-keyed sampling
//!   paths pinned to the same coin draws.
//! * [`wire`] — message wire-size accounting (a counting serde serializer).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adaptive;
pub mod chaos;
pub mod monte_carlo;
pub mod stats;
pub mod strategy;
pub mod trace;
pub mod weak;
pub mod wire;

pub use chaos::{ddmin, mix64, parallel_map, resolve_workers};
pub use monte_carlo::{
    simulate, simulate_scalar, simulate_sliced, worst_disagreement, SimConfig, SimReport,
};
pub use stats::{BernoulliEstimate, RunningStats};
pub use strategy::{
    crash_family, cut_family, single_drop_family, FixedRun, RandomDrop, RandomRun, RunSampler,
    SlicedSampler,
};
pub use weak::{LossModel, WeakAdversary};
