//! Generic chaos-campaign machinery: deterministic fan-out and shrinking.
//!
//! The chaos harness (in `ca-async`) samples many fault schedules, runs each
//! against the engine's invariant oracles, and shrinks any violating
//! schedule to a minimal counterexample. The protocol-agnostic pieces live
//! here:
//!
//! * [`mix64`] — SplitMix64 seed derivation, so every sampled schedule (and
//!   every per-fault decision inside one) is a pure function of
//!   `(base seed, index)`, independent of thread scheduling.
//! * [`parallel_map`] — a deterministic parallel map: results come back in
//!   input order regardless of which worker computed them.
//! * [`ddmin`] — Zeller-style delta debugging over an item list, used to
//!   strip a violating schedule down to the faults that matter.

use parking_lot::Mutex;

/// SplitMix64: derives a well-mixed child seed from `(seed, index)`.
///
/// Children of distinct indices are decorrelated even for adjacent indices,
/// which is what lets each fault primitive in a schedule draw its randomness
/// independently of the others' presence — a prerequisite for shrinking
/// (removing fault `k` must not reshuffle fault `j`'s coin flips).
pub fn mix64(seed: u64, index: u64) -> u64 {
    let mut z = seed.wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Resolves a requested worker count into an actual one.
///
/// A positive request wins unchanged. A request of 0 ("pick for me") defers
/// first to the `CA_THREADS` environment variable — which is how
/// `ca profile --threads` pins the whole process, including nested
/// `parallel_map` fan-out, to a fixed width — and then to the machine's
/// available parallelism.
pub fn resolve_workers(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if let Ok(var) = std::env::var("CA_THREADS") {
        if let Ok(n) = var.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to `0..count` on `workers` threads (0 = available
/// parallelism, honoring `CA_THREADS` — see [`resolve_workers`]), returning
/// results in index order.
///
/// Work is handed out by a shared counter, but the output slot is fixed by
/// the index, so the result is identical to the serial map whenever `f` is a
/// pure function of its index.
///
/// # Panics
///
/// Panics if a worker panics.
pub fn parallel_map<R, F>(count: usize, workers: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = resolve_workers(workers).min(count.max(1));

    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..count).map(|_| None).collect());
    let next = std::sync::atomic::AtomicUsize::new(0);
    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            let (results, next, f) = (&results, &next, &f);
            scope.spawn(move |_| loop {
                let k = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if k >= count {
                    break;
                }
                let r = f(k);
                results.lock()[k] = Some(r);
            });
        }
    })
    .expect("chaos worker panicked");

    results
        .into_inner()
        .into_iter()
        .map(|r| r.expect("every index computed"))
        .collect()
}

/// Delta debugging (ddmin): shrinks `items` to a subset that still satisfies
/// `test`, minimal in the sense that removing any single remaining item
/// makes `test` fail (1-minimality).
///
/// `test` must hold on the full input; it is the "still reproduces the
/// violation" predicate. The result preserves the relative order of the
/// kept items. `test` is invoked O(n²) times in the worst case.
///
/// # Panics
///
/// Panics if `test(items)` is false — shrinking an input that does not
/// reproduce is a caller bug.
pub fn ddmin<T: Clone>(items: &[T], mut test: impl FnMut(&[T]) -> bool) -> Vec<T> {
    assert!(test(items), "ddmin input must satisfy the predicate");
    let mut current: Vec<T> = items.to_vec();
    let mut granularity = 2usize;

    while current.len() >= 2 {
        let chunk = current.len().div_ceil(granularity);
        let mut reduced = false;

        // Try removing one chunk at a time (test on the complement).
        let mut start = 0;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            let complement: Vec<T> = current[..start]
                .iter()
                .chain(&current[end..])
                .cloned()
                .collect();
            if !complement.is_empty() && test(&complement) {
                current = complement;
                granularity = granularity.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }

        if !reduced {
            if chunk <= 1 {
                break; // 1-minimal: no single item can be removed.
            }
            granularity = (granularity * 2).min(current.len());
        }
    }

    // A singleton might still be removable if the empty subset reproduces.
    if current.len() == 1 && test(&[]) {
        current.clear();
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_decorrelates_indices_and_seeds() {
        assert_ne!(mix64(1, 0), mix64(1, 1));
        assert_ne!(mix64(1, 0), mix64(2, 0));
        assert_eq!(mix64(7, 3), mix64(7, 3));
    }

    #[test]
    fn parallel_map_is_order_preserving_and_thread_count_independent() {
        let serial = parallel_map(37, 1, |k| k * k);
        let parallel = parallel_map(37, 4, |k| k * k);
        assert_eq!(serial, parallel);
        assert_eq!(serial[6], 36);
        assert_eq!(parallel_map::<usize, _>(0, 4, |k| k), Vec::<usize>::new());
    }

    #[test]
    fn ddmin_finds_a_planted_minimal_pair() {
        // The violation needs both 3 and 7 to be present.
        let items: Vec<u32> = (0..20).collect();
        let shrunk = ddmin(&items, |s| s.contains(&3) && s.contains(&7));
        assert_eq!(shrunk, vec![3, 7]);
    }

    #[test]
    fn ddmin_handles_single_and_no_culprits() {
        let items: Vec<u32> = (0..10).collect();
        let shrunk = ddmin(&items, |s| s.contains(&9));
        assert_eq!(shrunk, vec![9]);
        // A predicate true even on the empty set shrinks to nothing.
        let shrunk = ddmin(&items, |_| true);
        assert!(shrunk.is_empty());
    }

    #[test]
    fn ddmin_preserves_order_of_kept_items() {
        let items = vec![5u32, 1, 4, 2, 3];
        let shrunk = ddmin(&items, |s| s.iter().filter(|&&x| x % 2 == 0).count() >= 2);
        assert_eq!(shrunk, vec![4, 2]);
    }

    #[test]
    #[should_panic(expected = "must satisfy the predicate")]
    fn ddmin_rejects_non_reproducing_input() {
        ddmin(&[1u32, 2, 3], |s| s.contains(&99));
    }
}
