//! Golden tests of the `ca exact --sweep` subcommand, driving the real
//! binary.
//!
//! Pins the byte-stability contract of the level-DP sweep report: same
//! `(graph, rounds, t)` ⟹ byte-identical JSON (exact rationals, no clocks),
//! which is what makes the `--compare` drift gate meaningful. Also pins the
//! headline capability: a sweep at `--rounds 100` succeeds where run
//! enumeration would refuse (`2^(3 + 6·100)` executions on K3).

use std::path::PathBuf;
use std::process::Command;

fn ca_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ca"))
}

fn tmp_path(name: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("ca_exact_cli_{}_{name}.json", std::process::id()));
    path
}

#[test]
fn sweep_report_is_byte_identical_across_invocations() {
    let out_a = tmp_path("a");
    let out_b = tmp_path("b");
    for out in [&out_a, &out_b] {
        let output = ca_bin()
            .args([
                "exact", "--sweep", "--graph", "k3", "--rounds", "100", "--t", "100", "--out",
            ])
            .arg(out)
            .output()
            .expect("run ca exact --sweep");
        assert!(
            output.status.success(),
            "ca exact --sweep exited with {}: {}",
            output.status,
            String::from_utf8_lossy(&output.stderr)
        );
    }
    let a = std::fs::read(&out_a).expect("read first report");
    let b = std::fs::read(&out_b).expect("read second report");
    assert!(!a.is_empty());
    assert_eq!(a, b, "sweep reports must be byte-identical");
    assert_eq!(a.last(), Some(&b'\n'), "report file ends with a newline");
    let text = String::from_utf8(a).expect("report is UTF-8");
    // The §8 shape at N = t = 100, far past the 2^24 enumeration wall:
    // liveness 1 first at round 100, U_s = ε = 1/100 exactly.
    assert!(text.contains("\"first_certain_round\": 100"), "{text}");
    assert!(
        text.contains("\"u_s\": {\n    \"num\": 1,\n    \"den\": 100\n  }"),
        "{text}"
    );
    let _ = std::fs::remove_file(&out_a);
    let _ = std::fs::remove_file(&out_b);
}

#[test]
fn sweep_compare_gate_passes_on_identical_and_fails_on_drift() {
    let baseline = tmp_path("baseline");
    let args = [
        "exact", "--sweep", "--graph", "k2", "--rounds", "24", "--t", "24",
    ];
    let output = ca_bin()
        .args(args)
        .arg("--out")
        .arg(&baseline)
        .output()
        .expect("write baseline");
    assert!(output.status.success());

    // Same configuration: the gate passes (and --out may refresh in place).
    let same = ca_bin()
        .args(args)
        .arg("--compare")
        .arg(&baseline)
        .output()
        .expect("run ca exact --sweep --compare");
    assert!(
        same.status.success(),
        "identical sweep must pass the drift gate: {}",
        String::from_utf8_lossy(&same.stderr)
    );

    // Different budget: the exact rationals drift, the gate fails.
    let drifted = ca_bin()
        .args([
            "exact",
            "--sweep",
            "--graph",
            "k2",
            "--rounds",
            "24",
            "--t",
            "12",
            "--compare",
        ])
        .arg(&baseline)
        .output()
        .expect("run drifted compare");
    assert!(!drifted.status.success(), "a drifted sweep must fail");
    let err = String::from_utf8_lossy(&drifted.stderr);
    assert!(err.contains("drifted from the baseline"), "{err}");

    let _ = std::fs::remove_file(&baseline);
}

#[test]
fn sweep_rejects_ineligible_graphs_with_a_typed_error() {
    let output = ca_bin()
        .args([
            "exact", "--sweep", "--graph", "k5", "--rounds", "4", "--t", "4",
        ])
        .output()
        .expect("run ca exact --sweep on K5");
    assert!(!output.status.success(), "K5 has 20 directed edges > 12");
    let err = String::from_utf8_lossy(&output.stderr);
    assert!(err.contains("error:"), "{err}");
}
