//! Golden tests of the `ca sweep` subcommand, driving the real binary.
//!
//! Pins the scenario-sweep determinism contract: the report is a pure
//! function of `(--m, --trials, --seed)` — byte-identical across repeat
//! invocations AND across worker counts (`--threads 1/2/8`) — because cells
//! derive their trial seed streams from `mix64(seed, cell)` regardless of
//! which worker runs them. Also pins the `--compare` drift gate and the
//! shape of the emitted JSON (no clocks, integer tallies).

use ca_analysis::ScenarioSweepReport;
use std::path::PathBuf;
use std::process::Command;

/// Small enough to finish in well under a second, big enough that every
/// generated family and both adversaries produce nontrivial frontiers.
const SMOKE: [&str; 6] = ["sweep", "--m", "96", "--trials", "40", "--seed"];

fn ca_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ca"))
}

fn tmp_path(name: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("ca_sweep_cli_{}_{name}.json", std::process::id()));
    path
}

fn run_smoke(seed: &str, threads: &str, out: &PathBuf) -> String {
    let output = ca_bin()
        .args(SMOKE)
        .args([seed, "--threads", threads, "--out"])
        .arg(out)
        .output()
        .expect("run ca sweep");
    assert!(
        output.status.success(),
        "ca sweep --threads {threads} exited with {}: {}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(std::fs::read(out).expect("read report")).expect("report is UTF-8")
}

#[test]
fn sweep_report_is_byte_identical_across_thread_counts() {
    let out_1 = tmp_path("t1");
    let out_2 = tmp_path("t2");
    let out_8 = tmp_path("t8");
    let r1 = run_smoke("7", "1", &out_1);
    let r2 = run_smoke("7", "2", &out_2);
    let r8 = run_smoke("7", "8", &out_8);
    assert_eq!(r1, r2, "sweep reports must not depend on the worker count");
    assert_eq!(r1, r8, "sweep reports must not depend on the worker count");

    // Repeat invocation at the same width is also byte-identical.
    let out_again = tmp_path("t1b");
    let r1_again = run_smoke("7", "1", &out_again);
    assert_eq!(r1, r1_again, "repeat sweep runs must be byte-identical");

    for out in [&out_1, &out_2, &out_8, &out_again] {
        let _ = std::fs::remove_file(out);
    }
}

#[test]
fn sweep_json_has_frontier_shape_and_no_clocks() {
    let output = ca_bin()
        .args(SMOKE)
        .arg("7")
        .output()
        .expect("run ca sweep");
    assert!(
        output.status.success(),
        "smoke sweep must exit cleanly: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let text = String::from_utf8(output.stdout).expect("stdout is UTF-8");
    let report: ScenarioSweepReport =
        serde::json::from_str(&text).expect("stdout is a parseable sweep report");
    assert_eq!(report.schema, 1);
    assert_eq!(report.config.threads, 0, "threads must be echoed as 0");
    // 3 topologies × 2 adversaries, in topology-major order.
    assert_eq!(report.cells.len(), 6);
    for cell in &report.cells {
        assert_eq!(cell.trials, 40);
        assert!(cell.graph.diameter > 0);
        for pt in &cell.points {
            assert_eq!(
                pt.ta.successes + pt.pa.successes + pt.na.successes,
                cell.trials,
                "TA/PA/NA must partition the trials"
            );
        }
        // The §8 shape: liveness never rises with t (exact under CRN).
        assert!(cell
            .points
            .windows(2)
            .all(|w| w[0].ta.successes >= w[1].ta.successes));
    }
    // No wall-clock fields anywhere in the report.
    assert!(!text.contains("wall"), "sweep reports must carry no clocks");
    // The human-readable table goes to stderr, keeping stdout pure JSON.
    let err = String::from_utf8_lossy(&output.stderr);
    assert!(err.contains("topology"), "stderr carries the table: {err}");
}

#[test]
fn compare_gate_passes_on_identical_runs_and_fails_on_drift() {
    let baseline = tmp_path("baseline");
    run_smoke("7", "0", &baseline);

    // Same config, same seed: the gate passes.
    let same = ca_bin()
        .args(SMOKE)
        .args(["7", "--compare"])
        .arg(&baseline)
        .output()
        .expect("run ca sweep --compare");
    assert!(
        same.status.success(),
        "identical sweep run must pass the gate: {}",
        String::from_utf8_lossy(&same.stderr)
    );
    assert!(
        String::from_utf8_lossy(&same.stderr).contains("byte-identical"),
        "the gate reports the match"
    );

    // Different seed: integer tallies drift, the gate fails.
    let drifted = ca_bin()
        .args(SMOKE)
        .args(["8", "--compare"])
        .arg(&baseline)
        .output()
        .expect("run ca sweep --compare");
    assert!(
        !drifted.status.success(),
        "a drifted run must fail the gate"
    );
    let err = String::from_utf8_lossy(&drifted.stderr);
    assert!(
        err.contains("drifted from the baseline"),
        "unexpected error output: {err}"
    );

    let _ = std::fs::remove_file(&baseline);
}
