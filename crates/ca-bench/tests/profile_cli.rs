//! Golden tests of the `ca profile` subcommand, driving the real binary.
//!
//! Pins the observability stability contract: the default (untimed) profile
//! is a deterministic function of `(scale, seed)` — byte-identical across
//! repeat invocations AND across worker counts (`--threads 1/2/8`), because
//! every stable metric is a per-trial fact merged commutatively. Also pins
//! the report shape (registry order, omitted zeros) and the `--compare`
//! drift gate.
//!
//! Compiled only with the `obs` feature (the default): with observability
//! compiled out, `ca profile` intentionally refuses to run.
#![cfg(feature = "obs")]

use std::path::PathBuf;
use std::process::Command;

fn ca_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ca"))
}

fn tmp_path(name: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("ca_profile_cli_{}_{name}.json", std::process::id()));
    path
}

fn run_profile(threads: &str, out: &PathBuf) -> String {
    let output = ca_bin()
        .args(["profile", "--trials", "20", "--threads", threads, "--out"])
        .arg(out)
        .output()
        .expect("run ca profile");
    assert!(
        output.status.success(),
        "ca profile --threads {threads} exited with {}: {}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(std::fs::read(out).expect("read report")).expect("report is UTF-8")
}

#[test]
fn profile_is_byte_identical_across_thread_counts() {
    let out_1 = tmp_path("t1");
    let out_2 = tmp_path("t2");
    let out_8 = tmp_path("t8");
    let p1 = run_profile("1", &out_1);
    let p2 = run_profile("2", &out_2);
    let p8 = run_profile("8", &out_8);
    assert_eq!(p1, p2, "profiles must not depend on the worker count");
    assert_eq!(p1, p8, "profiles must not depend on the worker count");

    // Repeat invocation at the same width is also byte-identical.
    let out_again = tmp_path("t1b");
    let p1_again = run_profile("1", &out_again);
    assert_eq!(p1, p1_again, "repeat profiles must be byte-identical");

    for out in [&out_1, &out_2, &out_8, &out_again] {
        let _ = std::fs::remove_file(out);
    }
}

#[test]
fn profile_report_has_the_pinned_shape() {
    let output = ca_bin()
        .args(["profile", "--trials", "20"])
        .output()
        .expect("run ca profile");
    assert!(output.status.success());
    let text = String::from_utf8(output.stdout).expect("stdout is UTF-8");

    assert!(text.contains("\"schema\": 1"));
    assert!(text.contains("\"timed\": false"));
    assert!(text.contains("\"id\": \"chaos\""));

    // Sections appear in registry order: E1..E12 then X1..X5.
    let ids = ["E1", "E2", "E12", "X1", "X5"];
    let positions: Vec<usize> = ids
        .iter()
        .map(|id| {
            text.find(&format!("\"id\": \"{id}\""))
                .unwrap_or_else(|| panic!("experiment {id} missing from profile"))
        })
        .collect();
    assert!(
        positions.windows(2).all(|w| w[0] < w[1]),
        "experiment sections out of registry order: {positions:?}"
    );

    // The engine's headline counters are present and attributed.
    for name in [
        "exec.transitions",
        "exec.messages_delivered",
        "sim.trials",
        "run.samples",
        "chaos.schedules",
    ] {
        assert!(text.contains(name), "counter `{name}` missing from profile");
    }

    // Untimed by default: no clock leaks anywhere.
    assert!(
        !text.contains("\"wall_ms\": 0.00"),
        "wall_ms must be exactly 0.0"
    );
    for field in ["\"wall_ms\": 0.0", "\"total_ns\": 0"] {
        assert!(text.contains(field));
    }
}

#[test]
fn compare_gate_passes_on_identical_runs_and_fails_on_drift() {
    let baseline = tmp_path("baseline");
    run_profile("0", &baseline);

    // Same scale, same seed: the gate passes.
    let same = ca_bin()
        .args(["profile", "--trials", "20", "--compare"])
        .arg(&baseline)
        .output()
        .expect("run ca profile --compare");
    assert!(
        same.status.success(),
        "identical profile must pass the drift gate: {}",
        String::from_utf8_lossy(&same.stderr)
    );

    // Different trial count: stable counters drift, the gate fails.
    let drifted = ca_bin()
        .args(["profile", "--trials", "40", "--compare"])
        .arg(&baseline)
        .output()
        .expect("run ca profile --compare");
    assert!(
        !drifted.status.success(),
        "a drifted profile must fail the gate"
    );
    let err = String::from_utf8_lossy(&drifted.stderr);
    assert!(
        err.contains("stable counters drifted"),
        "unexpected error output: {err}"
    );

    let _ = std::fs::remove_file(&baseline);
}
