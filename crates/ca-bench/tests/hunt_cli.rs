//! Golden tests of the `ca hunt` subcommand, driving the real binary.
//!
//! Pins the adversary-zoo contracts end to end:
//!
//! * **Determinism** — the hunt report is a pure function of `(graph,
//!   config)`: byte-identical across repeat invocations AND across worker
//!   counts (`--threads 1/2/8`), because every parallel stage is
//!   index-ordered and all ranking is exact arithmetic.
//! * **Convergence** — at quick scale on `k2` the search rediscovers the
//!   paper's worst case: the best schedule's induced run sits at
//!   `ML(R) = 1` with exact TA exactly `ε = 1/t`, its Monte Carlo attack
//!   rate is within `z = 4` of that analytic floor, and the online
//!   min-level adversary lands on the same liveness.
//! * **Replay** — the shrunk winner round-trips through its JSON file and
//!   re-scores to the same feasible damage.
//! * **The `--compare` drift gate** — passes on identical runs, fails on a
//!   different seed.
//!
//! Deliberately NOT gated on the `obs` feature: the hunt must run (and stay
//! deterministic) with observability compiled out.

use ca_async::{CandidateStatus, HuntReport};
use std::path::PathBuf;
use std::process::Command;

fn ca_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ca"))
}

fn tmp_path(name: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("ca_hunt_cli_{}_{name}.json", std::process::id()));
    path
}

/// Small-but-converging scale (seed 7 on k2): fast enough for CI, deep
/// enough that the search reaches the prefix-cut floor.
const QUICK: &[&str] = &[
    "hunt",
    "--graph",
    "k2",
    "--generations",
    "3",
    "--population",
    "12",
    "--budget",
    "512",
    "--seed",
    "7",
];

fn run_hunt(threads: &str, out: &PathBuf) -> String {
    let output = ca_bin()
        .args(QUICK)
        .args(["--threads", threads, "--out"])
        .arg(out)
        .output()
        .expect("run ca hunt");
    assert!(
        output.status.success(),
        "ca hunt --threads {threads} exited with {}: {}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(std::fs::read(out).expect("read report")).expect("report is UTF-8")
}

#[test]
fn hunt_report_is_byte_identical_across_thread_counts() {
    let out_1 = tmp_path("t1");
    let out_2 = tmp_path("t2");
    let out_8 = tmp_path("t8");
    let r1 = run_hunt("1", &out_1);
    let r2 = run_hunt("2", &out_2);
    let r8 = run_hunt("8", &out_8);
    assert_eq!(r1, r2, "hunt reports must not depend on the worker count");
    assert_eq!(r1, r8, "hunt reports must not depend on the worker count");

    // Repeat invocation at the same width is also byte-identical.
    let out_again = tmp_path("t1b");
    let r1_again = run_hunt("1", &out_again);
    assert_eq!(r1, r1_again, "repeat hunt runs must be byte-identical");

    for out in [&out_1, &out_2, &out_8, &out_again] {
        let _ = std::fs::remove_file(out);
    }
}

#[test]
fn hunt_rediscovers_the_prefix_cut_worst_case() {
    let output = ca_bin().args(QUICK).output().expect("run ca hunt");
    assert!(
        output.status.success(),
        "hunt must exit cleanly: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let text = String::from_utf8(output.stdout).expect("stdout is UTF-8");
    let report = HuntReport::from_json(&text).expect("stdout is a parseable hunt report");

    assert_eq!(report.schema, 1);
    assert_eq!(report.analytic.floor_ta, 0.125, "ε = 1/8");
    assert_eq!(report.analytic.boundary_ratio, 8.0, "L/U ≤ N with N = 8");

    // The search reached the paper's worst case: a non-vacuous schedule
    // whose induced run sits at ML(R) = 1 with exact TA exactly ε.
    let best = report.best.as_ref().expect("a feasible best exists");
    assert_eq!(best.status, CandidateStatus::Ok);
    assert_eq!(best.ml, 1, "best schedule cuts to the ML = 1 floor");
    assert_eq!(best.exact_ta, 0.125, "exact TA is the analytic floor ε");
    assert!(report.prefix_cut_equivalent);
    // Its Monte Carlo attack rate agrees with the floor at z = 4.
    assert!(best.mc_trials > 0);
    assert!(report.mc_within_floor_interval);

    // The online min-level adversary independently lands on the same
    // liveness: adaptivity rediscovers, but cannot beat, the offline bound.
    assert_eq!(report.online.ml, 1);
    assert_eq!(report.online.exact_ta, 0.125);
    assert!(report.online.matches_offline_best);

    // Infeasible blackouts were seen and navigated around, not crowned.
    assert!(report.candidates >= report.infeasible);
    assert_eq!(report.failed, 0, "no candidate evaluation panicked");
}

#[test]
fn shrunk_winner_replays_to_the_same_damage() {
    let out = tmp_path("replay_src");
    let text = run_hunt("0", &out);
    let report = HuntReport::from_json(&text).expect("parseable hunt report");
    let shrunk = report
        .shrunk
        .as_ref()
        .expect("hunt produced a shrunk winner");

    let schedule_path = tmp_path("replay_schedule");
    std::fs::write(&schedule_path, shrunk.to_json_pretty()).expect("write schedule");

    let replay = ca_bin()
        .args(["hunt", "--graph", "k2", "--seed", "7", "--replay"])
        .arg(&schedule_path)
        .output()
        .expect("run ca hunt --replay");
    assert!(
        replay.status.success(),
        "replay must exit cleanly: {}",
        String::from_utf8_lossy(&replay.stderr)
    );
    let replay_text = String::from_utf8(replay.stdout).expect("stdout is UTF-8");
    let result: ca_async::CandidateResult =
        serde::json::from_str(&replay_text).expect("stdout is a parseable candidate result");
    assert_eq!(result.status, CandidateStatus::Ok);
    assert_eq!(result.ml, report.best.as_ref().unwrap().ml);
    assert_eq!(result.exact_ta, report.best.as_ref().unwrap().exact_ta);
    assert!(result.safety_ok, "the shrunk winner never broke safety");

    let _ = std::fs::remove_file(&out);
    let _ = std::fs::remove_file(&schedule_path);
}

#[test]
fn compare_gate_passes_on_identical_runs_and_fails_on_drift() {
    let baseline = tmp_path("baseline");
    run_hunt("0", &baseline);

    // Same config, different worker count: the gate passes.
    let same = ca_bin()
        .args(QUICK)
        .args(["--threads", "2", "--compare"])
        .arg(&baseline)
        .output()
        .expect("run ca hunt --compare");
    assert!(
        same.status.success(),
        "identical hunt run must pass the gate: {}",
        String::from_utf8_lossy(&same.stderr)
    );

    // Different seed: the report drifts, the gate fails.
    let mut drifted_args: Vec<&str> = QUICK.to_vec();
    let seed_slot = drifted_args.len() - 1;
    drifted_args[seed_slot] = "8";
    let drifted = ca_bin()
        .args(&drifted_args)
        .arg("--compare")
        .arg(&baseline)
        .output()
        .expect("run ca hunt --compare");
    assert!(
        !drifted.status.success(),
        "a drifted run must fail the gate"
    );
    let err = String::from_utf8_lossy(&drifted.stderr);
    assert!(
        err.contains("regressed from the baseline"),
        "unexpected error output: {err}"
    );

    let _ = std::fs::remove_file(&baseline);
}
