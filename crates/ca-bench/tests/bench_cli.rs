//! Golden tests of the `ca bench` subcommand, driving the real binary.
//!
//! Pins the byte-stability contract: with `--stable`, two invocations with
//! the same flags must write byte-identical `BENCH_experiments.json` files.

use std::path::PathBuf;
use std::process::Command;

fn ca_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ca"))
}

fn tmp_path(name: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("ca_bench_cli_{}_{name}.json", std::process::id()));
    path
}

#[test]
fn stable_bench_output_is_byte_identical_across_invocations() {
    let out_a = tmp_path("a");
    let out_b = tmp_path("b");
    for out in [&out_a, &out_b] {
        let output = ca_bin()
            .args(["bench", "--trials", "20", "--stable", "--out"])
            .arg(out)
            .output()
            .expect("run ca bench");
        assert!(
            output.status.success(),
            "ca bench exited with {}",
            output.status
        );
    }
    let a = std::fs::read(&out_a).expect("read first report");
    let b = std::fs::read(&out_b).expect("read second report");
    assert!(!a.is_empty());
    assert_eq!(a, b, "--stable reports must be byte-identical");
    assert_eq!(a.last(), Some(&b'\n'), "report file ends with a newline");
    let text = String::from_utf8(a).expect("report is UTF-8");
    assert!(text.contains("\"schema\": 1"));
    assert!(text.contains("\"timed\": false"));
    assert!(text.contains("\"id\": \"E1\""));
    assert!(text.contains("\"id\": \"X1\""));
    let _ = std::fs::remove_file(&out_a);
    let _ = std::fs::remove_file(&out_b);
}

#[test]
fn timed_bench_reports_real_clocks() {
    let output = ca_bin()
        .args(["bench", "--trials", "20"])
        .output()
        .expect("run ca bench");
    assert!(output.status.success());
    let text = String::from_utf8(output.stdout).expect("stdout is UTF-8");
    assert!(text.contains("\"timed\": true"));
    assert!(
        !text.contains("\"total_wall_ms\": 0.0"),
        "timed run must report a positive total wall time"
    );
}
