//! Golden tests of the `ca serve` subcommand, driving the real binary.
//!
//! Pins the service determinism contract: the aggregate report of a serve
//! run is a pure function of `(scale, seed)` — byte-identical across repeat
//! invocations AND across worker counts (`--threads 1/2/8`) — because
//! shards are the unit of parallelism and each shard's virtual-time queue
//! is sequential. Also pins graceful degradation (the smoke preset must
//! shed or time out work, never hang or lose it) and the `--compare`
//! drift/regression gate.
//!
//! Deliberately NOT gated on the `obs` feature: unlike `ca profile`, the
//! service must run (and stay deterministic) with observability compiled
//! out.

use ca_async::ServeReport;
use std::path::PathBuf;
use std::process::Command;

fn ca_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ca"))
}

fn tmp_path(name: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("ca_serve_cli_{}_{name}.json", std::process::id()));
    path
}

fn run_smoke(threads: &str, out: &PathBuf) -> String {
    let output = ca_bin()
        .args([
            "serve",
            "--smoke",
            "--seed",
            "7",
            "--threads",
            threads,
            "--out",
        ])
        .arg(out)
        .output()
        .expect("run ca serve");
    assert!(
        output.status.success(),
        "ca serve --threads {threads} exited with {}: {}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(std::fs::read(out).expect("read report")).expect("report is UTF-8")
}

#[test]
fn serve_report_is_byte_identical_across_thread_counts() {
    let out_1 = tmp_path("t1");
    let out_2 = tmp_path("t2");
    let out_8 = tmp_path("t8");
    let r1 = run_smoke("1", &out_1);
    let r2 = run_smoke("2", &out_2);
    let r8 = run_smoke("8", &out_8);
    assert_eq!(r1, r2, "serve reports must not depend on the worker count");
    assert_eq!(r1, r8, "serve reports must not depend on the worker count");

    // Repeat invocation at the same width is also byte-identical.
    let out_again = tmp_path("t1b");
    let r1_again = run_smoke("1", &out_again);
    assert_eq!(r1, r1_again, "repeat serve runs must be byte-identical");

    for out in [&out_1, &out_2, &out_8, &out_again] {
        let _ = std::fs::remove_file(out);
    }
}

#[test]
fn smoke_run_degrades_gracefully_and_loses_nothing() {
    let output = ca_bin()
        .args(["serve", "--smoke", "--seed", "7", "--report"])
        .output()
        .expect("run ca serve --report");
    assert!(
        output.status.success(),
        "smoke serve must exit cleanly: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let text = String::from_utf8(output.stdout).expect("stdout is UTF-8");
    assert!(text.contains("\"schema\": 1"));
    let report = ServeReport::from_json(&text).expect("stdout is a parseable serve report");

    let t = &report.totals;
    // Graceful degradation, not graceful collapse: overload is shed or timed
    // out explicitly, while most of the offered load still decides.
    assert!(
        t.shed + t.timed_out > 0,
        "smoke preset must exhibit overload"
    );
    assert!(
        t.decided > t.instances / 2,
        "most instances decide: {} of {}",
        t.decided,
        t.instances
    );
    // Every instance is accounted for exactly once.
    assert_eq!(
        t.shed + t.decided + t.timed_out + t.undecided + t.failed,
        t.instances,
        "accounting must balance"
    );
    assert_eq!(
        t.verdicts.total(),
        t.decided,
        "every decided instance has a verdict"
    );
    assert_eq!(t.shards_poisoned, 0);
    // Untimed by default: no wall clock leaks into the report.
    assert_eq!(t.wall_ms, 0);
    assert_eq!(t.instances_per_sec, 0.0);
}

#[test]
fn compare_gate_passes_on_identical_runs_and_fails_on_drift() {
    let baseline = tmp_path("baseline");
    run_smoke("0", &baseline);

    // Same scale, same seed: the gate passes.
    let same = ca_bin()
        .args(["serve", "--smoke", "--seed", "7", "--compare"])
        .arg(&baseline)
        .output()
        .expect("run ca serve --compare");
    assert!(
        same.status.success(),
        "identical serve run must pass the gate: {}",
        String::from_utf8_lossy(&same.stderr)
    );

    // Different seed: stable counters drift, the gate fails.
    let drifted = ca_bin()
        .args(["serve", "--smoke", "--seed", "8", "--compare"])
        .arg(&baseline)
        .output()
        .expect("run ca serve --compare");
    assert!(
        !drifted.status.success(),
        "a drifted run must fail the gate"
    );
    let err = String::from_utf8_lossy(&drifted.stderr);
    assert!(
        err.contains("regressed from the baseline"),
        "unexpected error output: {err}"
    );

    let _ = std::fs::remove_file(&baseline);
}
