//! Benchmarks of the execution scratch: `execute_outputs` (allocating) vs
//! `execute_outputs_into` (buffer reuse).
//!
//! The Monte Carlo engine calls the executor once per trial, so per-call
//! allocations multiply by `trials × probabilities × experiments`. These
//! benches pin the win from threading one [`ExecScratch`] through the loop
//! instead of allocating fresh state/inbox/output vectors every call.

use ca_bench::{bench_graphs, bench_run};
use ca_core::exec::{execute_outputs, execute_outputs_into, ExecScratch};
use ca_core::tape::TapeSet;
use ca_protocols::ProtocolS;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_scratch_vs_alloc(c: &mut Criterion) {
    let mut group = c.benchmark_group("exec_scratch");
    let proto = ProtocolS::new(1.0 / 8.0);
    for (name, graph) in bench_graphs() {
        let run = bench_run(&graph, 16, 0.7, 9);
        let mut rng = StdRng::seed_from_u64(10);
        let tapes = TapeSet::random(&mut rng, graph.len(), 64);
        group.bench_with_input(BenchmarkId::new("alloc", name), &run, |b, run| {
            b.iter(|| execute_outputs(&proto, black_box(&graph), black_box(run), &tapes))
        });
        group.bench_with_input(BenchmarkId::new("scratch", name), &run, |b, run| {
            let mut scratch = ExecScratch::new();
            b.iter(|| {
                execute_outputs_into(
                    &proto,
                    black_box(&graph),
                    black_box(run),
                    &tapes,
                    &mut scratch,
                )
                .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scratch_vs_alloc);
criterion_main!(benches);
