//! Ablation benches: Figure 1's compression and the asynchronous engine.
//!
//! * `ablation_encoding`: one full execution of Protocol S vs the
//!   full-vector variant (identical decisions, different message encodings)
//!   — time per execution and the wire-size kernels.
//! * `async_engine`: the event-driven engine under reliable / lossy couriers
//!   (the X1 experiment's inner loop).

use ca_async::{run_async, AsyncConfig, AsyncS, RandomDropCourier, ReliableCourier};
use ca_core::exec::execute_outputs;
use ca_core::graph::Graph;
use ca_core::ids::ProcessId;
use ca_core::protocol::{Ctx, Protocol};
use ca_core::run::Run;
use ca_core::tape::TapeSet;
use ca_protocols::{ProtocolS, VectorS};
use ca_sim::wire::wire_size;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn ablation_encoding(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_encoding");
    for m in [8usize, 32, 128] {
        let graph = Graph::complete(m).expect("graph");
        let run = Run::good(&graph, 4);
        let mut rng = StdRng::seed_from_u64(1);
        let tapes = TapeSet::random(&mut rng, m, 64);
        let s = ProtocolS::new(0.2);
        let v = VectorS::new(0.2);

        group.bench_with_input(BenchmarkId::new("S_exec", m), &run, |b, run| {
            b.iter(|| execute_outputs(&s, black_box(&graph), black_box(run), &tapes))
        });
        group.bench_with_input(BenchmarkId::new("vector_exec", m), &run, |b, run| {
            b.iter(|| execute_outputs(&v, black_box(&graph), black_box(run), &tapes))
        });

        let ctx = Ctx::new(&graph, 4, ProcessId::LEADER);
        let mut r1 = tapes.tape(ProcessId::LEADER).reader();
        let st = s.init(ctx, true, &mut r1);
        let msg = s.message(ctx, &st, ProcessId::new(1));
        group.bench_with_input(BenchmarkId::new("S_wire_size", m), &msg, |b, msg| {
            b.iter(|| wire_size(black_box(msg)).expect("size"))
        });
    }
    group.finish();
}

fn async_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("async_engine");
    let graph = Graph::complete(4).expect("graph");
    let proto = AsyncS::new(0.1);
    let mut rng = StdRng::seed_from_u64(2);
    let tapes = TapeSet::random(&mut rng, 4, 64);

    group.bench_function("reliable_T40", |b| {
        b.iter(|| {
            let config = AsyncConfig::all_inputs(&graph, 40);
            let mut courier = ReliableCourier::new(1);
            run_async(&proto, black_box(&graph), &config, &tapes, &mut courier)
        })
    });
    group.bench_function("lossy_heartbeat_T40", |b| {
        b.iter(|| {
            let config = AsyncConfig::all_inputs(&graph, 40).with_heartbeat(2);
            let mut courier = RandomDropCourier::new(0.2, 1, 3, 7);
            run_async(&proto, black_box(&graph), &config, &tapes, &mut courier)
        })
    });
    group.finish();
}

criterion_group!(benches, ablation_encoding, async_engine);
criterion_main!(benches);
