//! One bench per experiment table: times the kernel that regenerates each of
//! E1–E12 (at reduced trial counts — the full tables come from the `expt`
//! binary; these benches document the cost of regenerating each one).

use ca_analysis::exact::{protocol_a_worst_pa, protocol_s_outcomes, protocol_s_worst_pa};
use ca_analysis::runs::{isolated_pair_run, ml_staircase, tree_run};
use ca_analysis::tradeoff::{min_rounds_for_certain_liveness, min_rounds_lower_bound};
use ca_core::clip::clip;
use ca_core::flow::FlowGraph;
use ca_core::graph::Graph;
use ca_core::ids::ProcessId;
use ca_core::level::{levels, modified_levels};
use ca_core::run::Run;
use ca_protocols::ProtocolS;
use ca_sim::{cut_family, simulate, FixedRun, RandomDrop, SimConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const TRIALS: u64 = 200;

fn e1_protocol_a_unsafety(c: &mut Criterion) {
    let graph = Graph::complete(2).expect("graph");
    c.bench_function("e1_exact_worst_pa_protocol_a_n16", |b| {
        let family = cut_family(&graph, 16);
        b.iter(|| protocol_a_worst_pa(black_box(&graph), black_box(&family), 16))
    });
}

fn e2_liveness_cliff(c: &mut Criterion) {
    let graph = Graph::complete(2).expect("graph");
    c.bench_function("e2_exact_outcomes_single_drop", |b| {
        let mut run = Run::good(&graph, 8);
        run.remove_message(
            ProcessId::new(0),
            ProcessId::new(1),
            ca_core::ids::Round::new(2),
        );
        b.iter(|| {
            (
                ca_analysis::exact::protocol_a_outcomes(black_box(&graph), black_box(&run), 8),
                protocol_s_outcomes(black_box(&graph), black_box(&run), 8),
            )
        })
    });
}

fn e3_bound_check(c: &mut Criterion) {
    let graph = Graph::complete(3).expect("graph");
    c.bench_function("e3_bound_check_staircase_k3", |b| {
        let family = ml_staircase(&graph, 8);
        b.iter(|| {
            family
                .iter()
                .map(|run| {
                    let l = levels(run).min_level();
                    let ta = protocol_s_outcomes(&graph, run, 10).ta;
                    (l, ta)
                })
                .collect::<Vec<_>>()
        })
    });
}

fn e4_s_unsafety(c: &mut Criterion) {
    let graph = Graph::complete(2).expect("graph");
    c.bench_function("e4_exact_worst_pa_protocol_s_n10", |b| {
        let family = cut_family(&graph, 10);
        b.iter(|| protocol_s_worst_pa(black_box(&graph), black_box(&family), 8))
    });
}

fn e5_liveness_curve(c: &mut Criterion) {
    let graph = Graph::complete(2).expect("graph");
    c.bench_function("e5_staircase_exact_n10", |b| {
        let family = ml_staircase(&graph, 10);
        b.iter(|| {
            family
                .iter()
                .map(|run| protocol_s_outcomes(&graph, run, 8).ta)
                .collect::<Vec<_>>()
        })
    });
}

fn e6_e7_level_census(c: &mut Criterion) {
    let graph = Graph::ring(5).expect("graph");
    let run = Run::good(&graph, 8);
    c.bench_function("e6_levels_and_ml_ring5", |b| {
        b.iter(|| (levels(black_box(&run)), modified_levels(black_box(&run))))
    });
}

fn e8_tree_run_and_clip(c: &mut Criterion) {
    let graph = Graph::star(8).expect("graph");
    c.bench_function("e8_tree_run_clip_star8", |b| {
        b.iter(|| {
            let run = tree_run(&graph, 6);
            clip(&run, ProcessId::LEADER)
        })
    });
}

fn e9_crossover(c: &mut Criterion) {
    let graph = Graph::complete(2).expect("graph");
    c.bench_function("e9_min_rounds_t64", |b| {
        b.iter(|| {
            (
                min_rounds_lower_bound(black_box(&graph), 64, 96),
                min_rounds_for_certain_liveness(black_box(&graph), 64, 96),
            )
        })
    });
}

fn e10_weak_adversary_mc(c: &mut Criterion) {
    let graph = Graph::complete(2).expect("graph");
    let proto = ProtocolS::new(1.0 / 12.0);
    let sampler = RandomDrop::new(&graph, 24, 0.1);
    c.bench_function("e10_mc_batch_random_drop", |b| {
        b.iter(|| {
            simulate(
                &proto,
                &graph,
                &sampler,
                SimConfig {
                    trials: TRIALS,
                    seed: 1,
                    threads: 1,
                },
            )
        })
    });
}

fn e11_topology_levels(c: &mut Criterion) {
    c.bench_function("e11_levels_all_topologies", |b| {
        let graphs = [
            Graph::complete(8).expect("graph"),
            Graph::ring(8).expect("graph"),
            Graph::line(8).expect("graph"),
        ];
        b.iter(|| {
            graphs
                .iter()
                .map(|g| levels(&Run::good(g, 24)).min_level())
                .collect::<Vec<_>>()
        })
    });
}

fn e12_causal_independence(c: &mut Criterion) {
    let graph = Graph::complete(4).expect("graph");
    let run = isolated_pair_run(&graph, 4, ProcessId::new(1), ProcessId::new(2));
    c.bench_function("e12_causal_independence_check", |b| {
        b.iter(|| {
            let flow = FlowGraph::new(black_box(&run));
            flow.causally_independent(ProcessId::new(1), ProcessId::new(2))
        })
    });
}

fn mc_fixed_run_throughput(c: &mut Criterion) {
    let graph = Graph::complete(2).expect("graph");
    let proto = ProtocolS::new(0.125);
    let sampler = FixedRun::new(Run::good(&graph, 8));
    c.bench_function("mc_fixed_run_200_trials", |b| {
        b.iter(|| {
            simulate(
                &proto,
                &graph,
                &sampler,
                SimConfig {
                    trials: TRIALS,
                    seed: 2,
                    threads: 1,
                },
            )
        })
    });
}

criterion_group!(
    benches,
    e1_protocol_a_unsafety,
    e2_liveness_cliff,
    e3_bound_check,
    e4_s_unsafety,
    e5_liveness_curve,
    e6_e7_level_census,
    e8_tree_run_and_clip,
    e9_crossover,
    e10_weak_adversary_mc,
    e11_topology_levels,
    e12_causal_independence,
    mc_fixed_run_throughput
);
criterion_main!(benches);
