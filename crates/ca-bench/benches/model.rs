//! Benchmarks of the model substrate: levels, clipping, flows-to.
//!
//! These are the kernels every experiment calls thousands of times; the
//! benches document their scaling in `m` (processes) and `N` (rounds).

use ca_bench::{bench_graphs, bench_run};
use ca_core::clip::clip;
use ca_core::flow::FlowGraph;
use ca_core::ids::{ProcessId, Round};
use ca_core::level::{levels, modified_levels};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_levels(c: &mut Criterion) {
    let mut group = c.benchmark_group("levels");
    for (name, graph) in bench_graphs() {
        let run = bench_run(&graph, 16, 0.7, 1);
        group.bench_with_input(BenchmarkId::new("L", name), &run, |b, run| {
            b.iter(|| levels(black_box(run)))
        });
        group.bench_with_input(BenchmarkId::new("ML", name), &run, |b, run| {
            b.iter(|| modified_levels(black_box(run)))
        });
    }
    group.finish();
}

fn bench_clip(c: &mut Criterion) {
    let mut group = c.benchmark_group("clip");
    for (name, graph) in bench_graphs() {
        let run = bench_run(&graph, 16, 0.7, 2);
        group.bench_with_input(BenchmarkId::from_parameter(name), &run, |b, run| {
            b.iter(|| clip(black_box(run), ProcessId::LEADER))
        });
    }
    group.finish();
}

fn bench_flow(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow");
    for (name, graph) in bench_graphs() {
        let run = bench_run(&graph, 16, 0.7, 3);
        group.bench_with_input(BenchmarkId::new("index", name), &run, |b, run| {
            b.iter(|| FlowGraph::new(black_box(run)))
        });
        let flow = FlowGraph::new(&run);
        let last = ProcessId::new(graph.len() as u32 - 1);
        group.bench_with_input(BenchmarkId::new("reach_to", name), &flow, |b, flow| {
            b.iter(|| flow.reach_to(black_box(last), Round::new(16)))
        });
        group.bench_with_input(BenchmarkId::new("env_reach", name), &flow, |b, flow| {
            b.iter(|| flow.env_reach())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_levels, bench_clip, bench_flow);
criterion_main!(benches);
