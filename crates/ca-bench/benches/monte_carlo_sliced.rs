//! Benchmarks of the two Monte Carlo paths: the scalar per-trial oracle
//! (`simulate_scalar`) vs the bit-sliced 64-lane engine (`simulate_sliced`).
//!
//! The sliced engine runs 64 trials per pass by bit-slicing each general's
//! counting-automaton state across `u64` words, so its per-trial cost is the
//! per-group cost divided by the lane width. These benches pin that ratio on
//! the E10 workload shape (complete graphs under i.i.d. drops) — the
//! headline ≥10x claim in the README — and on a fixed-run workload where the
//! sampler coins disappear and the kernel dominates.

use ca_protocols::{FixedThreshold, ProtocolS};
use ca_sim::strategy::{FixedRun, RandomDrop};
use ca_sim::{simulate_scalar, simulate_sliced, SimConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ca_core::graph::Graph;
use ca_core::run::Run;

const TRIALS: u64 = 2048;
const ROUNDS: u32 = 10;

fn config() -> SimConfig {
    SimConfig {
        trials: TRIALS,
        seed: 42,
        // Single worker: these benches measure the per-trial engine cost,
        // not thread scaling.
        threads: 1,
    }
}

fn bench_random_drop(c: &mut Criterion) {
    let mut group = c.benchmark_group("mc_random_drop");
    let proto = ProtocolS::new(1.0 / 8.0);
    for m in [2usize, 4] {
        let graph = Graph::complete(m).expect("graph");
        let sampler = RandomDrop::new(&graph, ROUNDS, 0.25);
        group.bench_with_input(BenchmarkId::new("scalar", m), &graph, |b, g| {
            b.iter(|| simulate_scalar(&proto, black_box(g), &sampler, config()))
        });
        group.bench_with_input(BenchmarkId::new("sliced", m), &graph, |b, g| {
            b.iter(|| {
                simulate_sliced(&proto, black_box(g), &sampler, config())
                    .expect("S over RandomDrop supports the sliced path")
            })
        });
    }
    group.finish();
}

fn bench_fixed_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("mc_fixed_run");
    let proto = FixedThreshold::new(ROUNDS / 2);
    for m in [2usize, 4] {
        let graph = Graph::complete(m).expect("graph");
        let sampler = FixedRun::new(Run::good(&graph, ROUNDS));
        group.bench_with_input(BenchmarkId::new("scalar", m), &graph, |b, g| {
            b.iter(|| simulate_scalar(&proto, black_box(g), &sampler, config()))
        });
        group.bench_with_input(BenchmarkId::new("sliced", m), &graph, |b, g| {
            b.iter(|| {
                simulate_sliced(&proto, black_box(g), &sampler, config())
                    .expect("threshold over FixedRun supports the sliced path")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_random_drop, bench_fixed_run);
criterion_main!(benches);
