//! Benchmarks of full protocol executions.
//!
//! `Ex(R, α)` for Protocol S across topologies (the experiments' inner
//! loop), Protocol A on the 2-clique, and the repetition combinator.

use ca_bench::{bench_graphs, bench_run};
use ca_core::exec::execute_outputs;
use ca_core::graph::Graph;
use ca_core::run::Run;
use ca_core::tape::TapeSet;
use ca_protocols::{CombineRule, DeterministicFlood, ProtocolA, ProtocolS, Repeat};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_protocol_s(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_s_execution");
    let proto = ProtocolS::new(1.0 / 8.0);
    for (name, graph) in bench_graphs() {
        let run = bench_run(&graph, 16, 0.7, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let tapes = TapeSet::random(&mut rng, graph.len(), 64);
        group.bench_with_input(BenchmarkId::from_parameter(name), &run, |b, run| {
            b.iter(|| execute_outputs(&proto, black_box(&graph), black_box(run), &tapes))
        });
    }
    group.finish();
}

fn bench_protocol_a(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_a_execution");
    let graph = Graph::complete(2).expect("graph");
    for n in [8u32, 32, 128] {
        let proto = ProtocolA::new(n);
        let run = Run::good(&graph, n);
        let mut rng = StdRng::seed_from_u64(6);
        let tapes = TapeSet::random(&mut rng, 2, proto_tape_bits(&proto));
        group.bench_with_input(BenchmarkId::from_parameter(n), &run, |b, run| {
            b.iter(|| execute_outputs(&proto, black_box(&graph), black_box(run), &tapes))
        });
    }
    group.finish();
}

fn proto_tape_bits<P: ca_core::protocol::Protocol>(p: &P) -> usize {
    p.tape_bits().max(1)
}

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_execution");
    let graph = Graph::complete(8).expect("graph");
    let run = bench_run(&graph, 16, 0.7, 7);
    let mut rng = StdRng::seed_from_u64(8);

    let flood = DeterministicFlood::new();
    let tapes = TapeSet::random(&mut rng, 8, 1);
    group.bench_function("det_flood_K8", |b| {
        b.iter(|| execute_outputs(&flood, black_box(&graph), black_box(&run), &tapes))
    });

    let graph2 = Graph::complete(2).expect("graph");
    let run2 = Run::good(&graph2, 16);
    let rep = Repeat::new(ProtocolA::new(16), 4, CombineRule::All);
    let tapes2 = TapeSet::random(&mut rng, 2, proto_tape_bits(&rep));
    group.bench_function("repeat4_A_K2", |b| {
        b.iter(|| execute_outputs(&rep, black_box(&graph2), black_box(&run2), &tapes2))
    });
    group.finish();
}

criterion_group!(benches, bench_protocol_s, bench_protocol_a, bench_baselines);
criterion_main!(benches);
