//! Benchmarks of adversary run sampling: `sample` (allocating) vs
//! `sample_into` (scratch-run reuse), plus the `delivers` point query.
//!
//! The Monte Carlo engine draws one run per trial, so sampling sits on the
//! same `trials × probabilities × experiments` multiplier as the executor.
//! These benches pin the win from the bit-packed run representation: the
//! scratch path refills one round-major bit matrix (`clone_from` plus one
//! coin per slot) instead of cloning a slot set and removing slots one by
//! one, and `delivers` is a single word probe however dense the run is.

use ca_bench::{bench_graphs, bench_run};
use ca_core::ids::{ProcessId, Round};
use ca_core::run::Run;
use ca_sim::{RandomDrop, RandomRun, RunSampler};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

const N: u32 = 16;

fn bench_random_drop(c: &mut Criterion) {
    let mut group = c.benchmark_group("run_sampling/random_drop");
    for (name, graph) in bench_graphs() {
        let sampler = RandomDrop::new(&graph, N, 0.2);
        group.bench_with_input(BenchmarkId::new("sample", name), &sampler, |b, sampler| {
            let mut rng = StdRng::seed_from_u64(11);
            b.iter(|| black_box(sampler.sample(&mut rng)).message_count())
        });
        group.bench_with_input(
            BenchmarkId::new("sample_into", name),
            &sampler,
            |b, sampler| {
                let mut rng = StdRng::seed_from_u64(11);
                let mut scratch = Run::empty(0, 0);
                b.iter(|| {
                    sampler.sample_into(&mut scratch, &mut rng);
                    black_box(&scratch).message_count()
                })
            },
        );
    }
    group.finish();
}

fn bench_random_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("run_sampling/random_run");
    for (name, graph) in bench_graphs() {
        let sampler = RandomRun::new(graph.clone(), N, 0.8, 0.7);
        group.bench_with_input(BenchmarkId::new("sample", name), &sampler, |b, sampler| {
            let mut rng = StdRng::seed_from_u64(12);
            b.iter(|| black_box(sampler.sample(&mut rng)).message_count())
        });
        group.bench_with_input(
            BenchmarkId::new("sample_into", name),
            &sampler,
            |b, sampler| {
                let mut rng = StdRng::seed_from_u64(12);
                let mut scratch = Run::empty(0, 0);
                b.iter(|| {
                    sampler.sample_into(&mut scratch, &mut rng);
                    black_box(&scratch).message_count()
                })
            },
        );
    }
    group.finish();
}

fn bench_delivers(c: &mut Criterion) {
    let mut group = c.benchmark_group("run_sampling/delivers");
    for (name, graph) in bench_graphs() {
        let run = bench_run(&graph, N, 0.7, 9);
        let m = graph.len() as u32;
        group.bench_with_input(BenchmarkId::new("probe_all", name), &run, |b, run| {
            b.iter(|| {
                let mut hits = 0usize;
                for r in 1..=N {
                    for i in 0..m {
                        for j in 0..m {
                            if run.delivers(
                                ProcessId::new(i),
                                ProcessId::new(j),
                                black_box(Round::new(r)),
                            ) {
                                hits += 1;
                            }
                        }
                    }
                }
                hits
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_random_drop, bench_random_run, bench_delivers);
criterion_main!(benches);
