//! The `ca profile` engine: per-experiment observability snapshots.
//!
//! Where `ca bench` answers "how long does each experiment take", `ca
//! profile` answers "what did the engine *do*": for every registry
//! experiment (and one fixed chaos campaign) it resets the global `ca-obs`
//! sink, runs the workload, and captures the merged counters, histograms,
//! and span tree — messages delivered vs. destroyed, runs sampled, tape
//! bits drawn, faults injected per primitive, shrink iterations, and so on.
//!
//! The JSON report follows the `ca bench` stability contract, but stricter:
//! by default the report is **byte-identical across thread counts and
//! repeat runs** for a fixed seed, because every counter the engine records
//! is a per-trial (or per-schedule) fact merged commutatively — nothing
//! depends on which worker did the work. Wall-clock readings (section
//! `wall_ms`, span `total_ns`, time-histogram contents) are suppressed to 0
//! unless [`ProfileConfig::timed`] asks for them, exactly like
//! `ca bench --stable` — except that for profiles the stable form is the
//! *default*, since attribution (which layer does how much work), not
//! timing, is the product. Zero-valued metrics are omitted, and the metric
//! order is the fixed `ca-obs` registry order.

use crate::bench::bench_registry;
use ca_analysis::experiments::Scale;
use ca_async::campaign::{run_campaign, CampaignConfig};
use ca_core::graph::Graph;
use ca_obs::{CounterId, HistId, Snapshot, SpanId};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Configuration for one profile sweep.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProfileConfig {
    /// Use [`Scale::full`] instead of [`Scale::quick`].
    pub full: bool,
    /// Override the scale's trial count (for fast smoke runs).
    pub trials: Option<u64>,
    /// Keep real clock readings instead of zeroing them. Timed reports are
    /// machine-dependent and not byte-stable; stable counters are unchanged.
    pub timed: bool,
}

impl ProfileConfig {
    /// The scale this configuration resolves to.
    pub fn scale(&self) -> Scale {
        let mut scale = if self.full {
            Scale::full()
        } else {
            Scale::quick()
        };
        if let Some(trials) = self.trials {
            scale.trials = trials;
        }
        scale
    }
}

/// One named counter value (zero-valued counters are omitted).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterEntry {
    /// Registry name (`"exec.transitions"`, …).
    pub name: String,
    /// Accumulated value.
    pub value: u64,
}

/// One nonzero log2 histogram bucket.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BucketEntry {
    /// Bucket index: the bit length of the values it holds (0 = exactly 0).
    pub log2: u32,
    /// Samples in the bucket.
    pub count: u64,
}

/// One histogram's aggregate (histograms with no samples are omitted).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistEntry {
    /// Registry name (`"sim.trial_ml"`, …).
    pub name: String,
    /// Number of samples (always stable).
    pub count: u64,
    /// Sum of values (0 for suppressed time histograms).
    pub sum: u64,
    /// Minimum value (0 for suppressed time histograms).
    pub min: u64,
    /// Maximum value (0 for suppressed time histograms).
    pub max: u64,
    /// Nonzero buckets in index order (empty for suppressed time
    /// histograms).
    pub buckets: Vec<BucketEntry>,
}

/// One span's aggregate (spans never entered are omitted).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanEntry {
    /// Registry name (`"sim.trial"`, …).
    pub name: String,
    /// Parent span name, `""` for roots (the static tree of the registry).
    pub parent: String,
    /// Completed entries (always stable).
    pub count: u64,
    /// Total nanoseconds inside the span (0 when timing is suppressed).
    pub total_ns: u64,
}

/// All metrics of one snapshot, in registry order.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSection {
    /// Nonzero counters.
    pub counters: Vec<CounterEntry>,
    /// Nonempty histograms.
    pub histograms: Vec<HistEntry>,
    /// Entered spans.
    pub spans: Vec<SpanEntry>,
}

/// One profiled workload section (an experiment, or the chaos campaign).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SectionProfile {
    /// Section id: the experiment id, or `"chaos"`.
    pub id: String,
    /// Wall time in milliseconds (0 when timing is suppressed).
    pub wall_ms: f64,
    /// What the engine recorded while this section ran.
    pub metrics: MetricsSection,
}

/// The full profile report (`ca profile` JSON).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProfileReport {
    /// Report format version.
    pub schema: u32,
    /// `"quick"` or `"full"` (the base scale before any trial override).
    pub scale: String,
    /// Monte Carlo trials per estimated probability.
    pub trials: u64,
    /// Base seed of the sweep.
    pub seed: u64,
    /// Whether the clock readings are real (false by default; profiles are
    /// stable-first).
    pub timed: bool,
    /// Per-experiment sections, in registry order (E1–E12, X1–X5).
    pub experiments: Vec<SectionProfile>,
    /// The fixed chaos-campaign section.
    pub chaos: SectionProfile,
    /// Every section's metrics merged.
    pub totals: MetricsSection,
}

impl ProfileReport {
    /// Serializes the report as pretty JSON (deterministic field and
    /// registry order).
    pub fn to_json_pretty(&self) -> String {
        serde::json::to_string_pretty(self).expect("profile reports are always serializable")
    }
}

/// A finished profile run: the serializable report plus the merged raw
/// snapshot (for the human-readable span-tree dump).
#[derive(Clone, Debug)]
pub struct ProfileRun {
    /// The JSON report.
    pub report: ProfileReport,
    /// The merged snapshot behind `report.totals`.
    pub totals_snapshot: Snapshot,
}

fn section_from(snapshot: &Snapshot, timed: bool) -> MetricsSection {
    let counters = CounterId::ALL
        .iter()
        .filter_map(|&id| {
            let value = snapshot.counter(id);
            (value != 0).then(|| CounterEntry {
                name: id.name().to_owned(),
                value,
            })
        })
        .collect();
    let histograms = HistId::ALL
        .iter()
        .filter_map(|&id| {
            let h = snapshot.hist(id);
            if h.count == 0 {
                return None;
            }
            // Time histograms keep their (stable) sample count but shed the
            // machine-dependent nanosecond values unless timing is on.
            let suppressed = id.is_time_ns() && !timed;
            Some(HistEntry {
                name: id.name().to_owned(),
                count: h.count,
                sum: if suppressed { 0 } else { h.sum },
                min: if suppressed { 0 } else { h.min },
                max: if suppressed { 0 } else { h.max },
                buckets: if suppressed {
                    Vec::new()
                } else {
                    h.buckets
                        .iter()
                        .enumerate()
                        .filter(|(_, &count)| count != 0)
                        .map(|(log2, &count)| BucketEntry {
                            log2: log2 as u32,
                            count,
                        })
                        .collect()
                },
            })
        })
        .collect();
    let spans = SpanId::ALL
        .iter()
        .filter_map(|&id| {
            let s = snapshot.span(id);
            (s.count != 0).then(|| SpanEntry {
                name: id.name().to_owned(),
                parent: id.parent().map(|p| p.name()).unwrap_or("").to_owned(),
                count: s.count,
                total_ns: if timed { s.total_ns } else { 0 },
            })
        })
        .collect();
    MetricsSection {
        counters,
        histograms,
        spans,
    }
}

/// The fixed chaos workload every profile includes: a small K3 campaign,
/// deterministic in the profile seed.
fn chaos_workload(seed: u64) -> (Graph, CampaignConfig) {
    let graph = Graph::complete(3).expect("K3 is constructible");
    let config = CampaignConfig {
        schedules: 8,
        seed,
        deadline: 12,
        t: 4,
        max_faults: 4,
        threads: 0,
        mc_trials: 40,
    };
    (graph, config)
}

/// Profiles one workload section: resets the global sink, runs `work`, and
/// captures what it recorded. Sections run serially, so a section's snapshot
/// contains that workload's metrics and nothing else.
fn profile_section<T>(
    id: &str,
    timed: bool,
    work: impl FnOnce() -> T,
) -> (SectionProfile, Snapshot, T) {
    ca_obs::reset_global();
    let start = Instant::now();
    let result = work();
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let snapshot = ca_obs::global_snapshot();
    let section = SectionProfile {
        id: id.to_owned(),
        wall_ms: if timed { wall_ms } else { 0.0 },
        metrics: section_from(&snapshot, timed),
    };
    (section, snapshot, result)
}

/// Runs every registry experiment plus the fixed chaos campaign, capturing
/// each section's observability snapshot.
pub fn run_profile(config: &ProfileConfig) -> ProfileRun {
    let scale = config.scale();
    let mut totals = Snapshot::new();
    let mut experiments = Vec::new();
    for experiment in bench_registry() {
        let (mut section, snapshot, result) =
            profile_section(experiment.id(), config.timed, || {
                experiment.run_observed(scale)
            });
        section.id = result.id;
        totals.merge(&snapshot);
        experiments.push(section);
    }

    let (graph, chaos_config) = chaos_workload(scale.seed);
    let (chaos, snapshot, _) = profile_section("chaos", config.timed, || {
        run_campaign(&graph, &chaos_config)
    });
    totals.merge(&snapshot);

    ProfileRun {
        report: ProfileReport {
            schema: 1,
            scale: if config.full { "full" } else { "quick" }.to_owned(),
            trials: scale.trials,
            seed: scale.seed,
            timed: config.timed,
            experiments,
            chaos,
            totals: section_from(&totals, config.timed),
        },
        totals_snapshot: totals,
    }
}

/// One counter's change between two profile reports.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterDelta {
    /// Counter name.
    pub name: String,
    /// Value in the old report (0 if absent).
    pub old: u64,
    /// Value in the new report (0 if absent).
    pub new: u64,
}

/// The result of diffing two profile reports' total counters.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProfileComparison {
    /// Every counter present in either report, in registry order.
    pub entries: Vec<CounterDelta>,
}

impl ProfileComparison {
    /// Names of the counters whose values differ.
    ///
    /// Counters are deterministic functions of `(scale, seed)`, so at equal
    /// scales any difference means the engine's behavior changed — which is
    /// sometimes the point of a PR, but never something to merge unnoticed.
    pub fn changed(&self) -> Vec<&str> {
        self.entries
            .iter()
            .filter(|e| e.old != e.new)
            .map(|e| e.name.as_str())
            .collect()
    }
}

impl std::fmt::Display for ProfileComparison {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{:<28} {:>16} {:>16}", "counter", "old", "new")?;
        for e in &self.entries {
            writeln!(
                f,
                "{:<28} {:>16} {:>16}{}",
                e.name,
                e.old,
                e.new,
                if e.old != e.new { "  CHANGED" } else { "" }
            )?;
        }
        Ok(())
    }
}

/// Diffs the total counters of two profile reports by name.
pub fn compare_profiles(old: &ProfileReport, new: &ProfileReport) -> ProfileComparison {
    let value_in = |section: &MetricsSection, name: &str| {
        section
            .counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    };
    let entries = CounterId::ALL
        .iter()
        .map(|id| {
            let name = id.name();
            CounterDelta {
                name: name.to_owned(),
                old: value_in(&old.totals, name),
                new: value_in(&new.totals, name),
            }
        })
        .filter(|d| d.old != 0 || d.new != 0)
        .collect();
    ProfileComparison { entries }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_config() -> ProfileConfig {
        ProfileConfig {
            full: false,
            trials: Some(20),
            timed: false,
        }
    }

    #[test]
    fn untimed_profiles_are_deterministic() {
        let a = run_profile(&smoke_config());
        let b = run_profile(&smoke_config());
        assert_eq!(a.report, b.report);
        assert_eq!(a.report.to_json_pretty(), b.report.to_json_pretty());
        assert_eq!(a.report.experiments.len(), 19, "18 sync experiments + X1");
        assert!(!a.report.timed);
        assert!(a
            .report
            .experiments
            .iter()
            .all(|s| s.wall_ms == 0.0 && s.metrics.spans.iter().all(|sp| sp.total_ns == 0)));
    }

    #[test]
    fn report_round_trips_through_json() {
        let run = run_profile(&smoke_config());
        let text = run.report.to_json_pretty();
        let back: ProfileReport = serde::json::from_str(&text).expect("report parses");
        assert_eq!(run.report, back);
    }

    #[test]
    fn compare_detects_scale_changes() {
        let a = run_profile(&smoke_config()).report;
        let same = compare_profiles(&a, &a);
        assert!(same.changed().is_empty(), "{same}");
        if ca_obs::ENABLED {
            let b = run_profile(&ProfileConfig {
                trials: Some(40),
                ..smoke_config()
            })
            .report;
            let diff = compare_profiles(&a, &b);
            assert!(
                diff.changed().contains(&"sim.trials"),
                "doubling trials must change the trial counter: {diff}"
            );
        }
    }

    #[cfg(feature = "obs")]
    #[test]
    fn profiles_attribute_work_to_sections() {
        let run = run_profile(&smoke_config());
        let totals = &run.report.totals;
        let counter = |name: &str| {
            totals
                .counters
                .iter()
                .find(|c| c.name == name)
                .map_or(0, |c| c.value)
        };
        assert!(counter("sim.trials") > 0);
        assert!(counter("exec.transitions") > 0);
        assert!(counter("chaos.schedules") > 0);
        // The chaos section holds the campaign metrics, not the experiments'.
        assert!(run
            .report
            .chaos
            .metrics
            .counters
            .iter()
            .any(|c| c.name == "chaos.schedules"));
        // Span tree: trials nest under simulate.
        let trial = totals
            .spans
            .iter()
            .find(|s| s.name == "sim.trial")
            .expect("trial span present");
        assert_eq!(trial.parent, "sim.simulate");
        // The scalar engine opens one trial span per trial; the bit-sliced
        // engine opens one per 64-lane group. The counter always counts
        // trials, so each span covers between 1 and 64 of them.
        assert!(trial.count > 0);
        assert!(trial.count <= counter("sim.trials"));
        assert!(counter("sim.trials") <= trial.count * 64);
    }
}
