//! The experiment runner: regenerates every table of the reproduction.
//!
//! ```text
//! expt                 # run all experiments at quick scale
//! expt --full          # paper-grade trial counts
//! expt e4 e5           # only the named experiments
//! expt --csv out/      # additionally dump each table as CSV
//! expt --spans         # per-experiment engine metrics + span tree (stderr)
//! expt --list          # list experiment ids and titles
//! ```
//!
//! Exit code is nonzero if any experiment's paper-shape checks fail.

use ca_analysis::experiments::{all_experiments, experiment_by_id, Experiment, Scale};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    full: bool,
    list: bool,
    spans: bool,
    csv_dir: Option<PathBuf>,
    ids: Vec<String>,
    trials: Option<u64>,
    seed: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        full: false,
        list: false,
        spans: false,
        csv_dir: None,
        ids: Vec::new(),
        trials: None,
        seed: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--full" => args.full = true,
            "--list" => args.list = true,
            "--spans" => args.spans = true,
            "--csv" => {
                let dir = it.next().ok_or("--csv requires a directory")?;
                args.csv_dir = Some(PathBuf::from(dir));
            }
            "--trials" => {
                let v = it.next().ok_or("--trials requires a number")?;
                args.trials = Some(v.parse().map_err(|_| format!("bad trial count `{v}`"))?);
            }
            "--seed" => {
                let v = it.next().ok_or("--seed requires a number")?;
                args.seed = Some(v.parse().map_err(|_| format!("bad seed `{v}`"))?);
            }
            "--help" | "-h" => {
                println!(
                    "usage: expt [--full] [--list] [--spans] [--csv DIR] [--trials N] [--seed S] [EXPERIMENT_ID ...]\n\
                     runs the E1-E12 paper suite plus the X1-X3 extensions\n\
                     reproducing Varghese & Lynch (PODC 1992)"
                );
                std::process::exit(0);
            }
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            other => args.ids.push(other.to_owned()),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    if args.list {
        let mut all = all_experiments();
        all.extend(ca_async::experiments::extension_experiments());
        for e in all {
            println!("{:4}  {}", e.id(), e.title());
        }
        return ExitCode::SUCCESS;
    }

    let registry = || {
        let mut all = all_experiments();
        all.extend(ca_async::experiments::extension_experiments());
        all
    };

    let experiments: Vec<Box<dyn Experiment>> = if args.ids.is_empty() {
        registry()
    } else {
        let mut out = Vec::new();
        for id in &args.ids {
            let found = experiment_by_id(id).or_else(|| {
                ca_async::experiments::extension_experiments()
                    .into_iter()
                    .find(|e| e.id().eq_ignore_ascii_case(id))
            });
            match found {
                Some(e) => out.push(e),
                None => {
                    eprintln!("error: unknown experiment id `{id}` (try --list)");
                    return ExitCode::FAILURE;
                }
            }
        }
        out
    };

    let mut scale = if args.full {
        Scale::full()
    } else {
        Scale::quick()
    };
    if let Some(trials) = args.trials {
        scale.trials = trials;
    }
    if let Some(seed) = args.seed {
        scale.seed = seed;
    }
    println!(
        "running {} experiment(s) at {} trials (seed {:#x})\n",
        experiments.len(),
        scale.trials,
        scale.seed
    );

    if let Some(dir) = &args.csv_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }

    let mut all_passed = true;
    let mut summary: Vec<(String, String, bool, f64)> = Vec::new();
    if args.spans && !ca_obs::ENABLED {
        eprintln!(
            "note: --spans needs an observability-enabled build \
             (the default `expt`); nothing will be recorded"
        );
    }

    for experiment in &experiments {
        if args.spans {
            ca_obs::reset_global();
        }
        let start = std::time::Instant::now();
        let result = experiment.run_observed(scale);
        let secs = start.elapsed().as_secs_f64();
        println!("{result}");
        println!("({secs:.1}s)\n");
        if args.spans {
            eprintln!("-- {} engine metrics --", result.id);
            eprint!("{}", ca_obs::render(&ca_obs::global_snapshot(), true));
            eprintln!();
        }
        all_passed &= result.passed;
        summary.push((result.id.clone(), result.title.clone(), result.passed, secs));
        if let Some(dir) = &args.csv_dir {
            let path = dir.join(format!("{}.csv", result.id.to_lowercase()));
            if let Err(e) = std::fs::write(&path, result.table.to_csv()) {
                eprintln!("error: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }

    println!("== summary ==");
    for (id, title, passed, secs) in &summary {
        println!(
            "{:4}  {}  {:5.1}s  {}",
            id,
            if *passed { "PASS" } else { "FAIL" },
            secs,
            title
        );
    }
    println!();

    if all_passed {
        println!("ALL EXPERIMENTS PASSED");
        ExitCode::SUCCESS
    } else {
        println!("SOME EXPERIMENTS FAILED");
        ExitCode::FAILURE
    }
}
