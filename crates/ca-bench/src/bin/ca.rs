//! `ca`: a command-line explorer for the coordinated-attack workspace.
//!
//! ```text
//! ca levels   --graph k2 --rounds 8 --cut 4        # level tables for a run
//! ca trace    --graph k3 --rounds 5 --epsilon 0.25 # one traced execution of S
//! ca simulate --graph k2 --rounds 8 --epsilon 0.125 --cut 4 --trials 20000
//! ca exact    --graph star4 --rounds 8 --t 5 --cut 3
//! ca graphs                                        # list available topologies
//! ```
//!
//! Graph names: `k<m>` (complete), `line<m>`, `ring<m>`, `star<m>`,
//! `grid<r>x<c>`, `cube<d>`, `torus<r>x<c>`.

use ca_analysis::exact::protocol_s_outcomes;
use ca_analysis::report::Table;
use ca_core::exec::execute;
use ca_core::graph::Graph;
use ca_core::ids::{ProcessId, Round};
use ca_core::level::{levels, modified_levels};
use ca_core::run::Run;
use ca_core::tape::TapeSet;
use ca_sim::trace::{render_run, render_trace};
use ca_sim::{simulate, FixedRun, SimConfig};
use ca_protocols::ProtocolS;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::ExitCode;

fn parse_graph(name: &str) -> Result<Graph, String> {
    let err = |e: ca_core::ModelError| format!("bad graph `{name}`: {e}");
    if let Some(m) = name.strip_prefix('k') {
        return Graph::complete(m.parse().map_err(|_| format!("bad size in `{name}`"))?)
            .map_err(err);
    }
    if let Some(m) = name.strip_prefix("line") {
        return Graph::line(m.parse().map_err(|_| format!("bad size in `{name}`"))?).map_err(err);
    }
    if let Some(m) = name.strip_prefix("ring") {
        return Graph::ring(m.parse().map_err(|_| format!("bad size in `{name}`"))?).map_err(err);
    }
    if let Some(m) = name.strip_prefix("star") {
        return Graph::star(m.parse().map_err(|_| format!("bad size in `{name}`"))?).map_err(err);
    }
    if let Some(d) = name.strip_prefix("cube") {
        return Graph::hypercube(d.parse().map_err(|_| format!("bad dim in `{name}`"))?)
            .map_err(err);
    }
    type GraphCtor = fn(usize, usize) -> Result<Graph, ca_core::ModelError>;
    for (prefix, ctor) in [
        ("grid", Graph::grid as GraphCtor),
        ("torus", Graph::torus as GraphCtor),
    ] {
        if let Some(dims) = name.strip_prefix(prefix) {
            let (r, c) = dims
                .split_once('x')
                .ok_or_else(|| format!("`{name}` needs RxC dimensions"))?;
            let r = r.parse().map_err(|_| format!("bad rows in `{name}`"))?;
            let c = c.parse().map_err(|_| format!("bad cols in `{name}`"))?;
            return ctor(r, c).map_err(err);
        }
    }
    Err(format!("unknown graph `{name}` (try `ca graphs`)"))
}

#[derive(Debug)]
struct Opts {
    graph: String,
    rounds: u32,
    epsilon: f64,
    t: u64,
    cut: Option<u32>,
    drop_link: Option<(u32, u32, u32)>,
    trials: u64,
    seed: u64,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            graph: "k2".to_owned(),
            rounds: 8,
            epsilon: 0.125,
            t: 8,
            cut: None,
            drop_link: None,
            trials: 10_000,
            seed: 42,
        }
    }
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut next = |what: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{arg} requires {what}"))
        };
        match arg.as_str() {
            "--graph" => opts.graph = next("a graph name")?,
            "--rounds" => {
                opts.rounds = next("a count")?.parse().map_err(|_| "bad --rounds".to_owned())?
            }
            "--epsilon" => {
                opts.epsilon = next("a value")?.parse().map_err(|_| "bad --epsilon".to_owned())?;
                opts.t = (1.0 / opts.epsilon).round() as u64;
            }
            "--t" => {
                opts.t = next("a value")?.parse().map_err(|_| "bad --t".to_owned())?;
                opts.epsilon = 1.0 / opts.t as f64;
            }
            "--cut" => opts.cut = Some(next("a round")?.parse().map_err(|_| "bad --cut".to_owned())?),
            "--drop-link" => {
                let spec = next("FROM:TO:ROUND")?;
                let parts: Vec<_> = spec.split(':').collect();
                if parts.len() != 3 {
                    return Err("--drop-link needs FROM:TO:ROUND".to_owned());
                }
                opts.drop_link = Some((
                    parts[0].parse().map_err(|_| "bad FROM".to_owned())?,
                    parts[1].parse().map_err(|_| "bad TO".to_owned())?,
                    parts[2].parse().map_err(|_| "bad ROUND".to_owned())?,
                ));
            }
            "--trials" => {
                opts.trials = next("a count")?.parse().map_err(|_| "bad --trials".to_owned())?
            }
            "--seed" => opts.seed = next("a seed")?.parse().map_err(|_| "bad --seed".to_owned())?,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(opts)
}

fn build_run(graph: &Graph, opts: &Opts) -> Run {
    let mut run = Run::good(graph, opts.rounds);
    if let Some(cut) = opts.cut {
        run.cut_from_round(Round::new(cut));
    }
    if let Some((from, to, round)) = opts.drop_link {
        run.cut_link_from_round(ProcessId::new(from), ProcessId::new(to), Round::new(round));
    }
    run
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().map(String::as_str) else {
        eprintln!("usage: ca <levels|trace|simulate|exact|graphs> [flags] (see --help)");
        return ExitCode::FAILURE;
    };
    if command == "--help" || command == "-h" {
        println!(
            "ca — explore the coordinated-attack model\n\
             commands: levels, trace, simulate, exact, graphs\n\
             flags: --graph NAME --rounds N --epsilon E | --t T --cut R \
             --drop-link F:T:R --trials K --seed S"
        );
        return ExitCode::SUCCESS;
    }
    if command == "graphs" {
        println!("k<m>  line<m>  ring<m>  star<m>  grid<r>x<c>  torus<r>x<c>  cube<d>");
        return ExitCode::SUCCESS;
    }
    let opts = match parse_opts(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let graph = match parse_graph(&opts.graph) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let run = build_run(&graph, &opts);

    match command {
        "levels" => {
            print!("{}", render_run(&run));
            let l = levels(&run);
            let ml = modified_levels(&run);
            let mut table = Table::new(["process", "L_i(R)", "ML_i(R)"]);
            for i in graph.vertices() {
                table.push_row([i.to_string(), l.level(i).to_string(), ml.level(i).to_string()]);
            }
            println!("\n{table}");
            println!("L(R) = {}, ML(R) = {}", l.min_level(), ml.min_level());
        }
        "trace" => {
            let proto = ProtocolS::new(opts.epsilon);
            let mut rng = StdRng::seed_from_u64(opts.seed);
            let tapes = TapeSet::random(&mut rng, graph.len(), 64);
            let ex = execute(&proto, &graph, &run, &tapes);
            print!("{}", render_trace(&graph, &run, &ex));
        }
        "simulate" => {
            let proto = ProtocolS::new(opts.epsilon);
            let report = simulate(
                &proto,
                &graph,
                &FixedRun::new(run),
                SimConfig::new(opts.trials, opts.seed),
            );
            println!("{report}");
        }
        "exact" => {
            let out = protocol_s_outcomes(&graph, &run, opts.t);
            let ml = modified_levels(&run).min_level();
            println!("ML(R) = {ml}, ε = 1/{}", opts.t);
            println!("Pr[TA|R] = {}   Pr[NA|R] = {}   Pr[PA|R] = {}", out.ta, out.na, out.pa);
        }
        other => {
            eprintln!("error: unknown command `{other}`");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
