//! `ca`: a command-line explorer for the coordinated-attack workspace.
//!
//! ```text
//! ca levels   --graph k2 --rounds 8 --cut 4        # level tables for a run
//! ca trace    --graph k3 --rounds 5 --epsilon 0.25 # one traced execution of S
//! ca simulate --graph k2 --rounds 8 --epsilon 0.125 --cut 4 --trials 20000
//! ca exact    --graph star4 --rounds 8 --t 5 --cut 3
//! ca exact    --sweep --graph k3 --rounds 1000 --t 1000 --out exact_sweep.json
//! ca exact    --sweep --graph k3 --rounds 24 --t 24 --compare exact_sweep.json
//! ca chaos    --graph k3 --deadline 16 --t 4 --schedules 64 --seed 7
//! ca chaos    --graph k3 --deadline 16 --t 4 --replay shrunk.json
//! ca hunt     --graph k2 --rounds 8 --t 8 --seed 7          # adversary search
//! ca hunt     --graph k2 --replay worst.json                # re-score a schedule
//! ca hunt     --graph k2 --seed 7 --compare hunt_smoke.json # fail on drift
//! ca bench    --out BENCH_experiments.json         # time every experiment
//! ca bench    --compare BENCH_experiments.json     # fail on >25% regression
//! ca profile  --out profile.json                   # per-experiment engine metrics
//! ca profile  --compare profile.json               # fail if stable counters drift
//! ca serve    --smoke --report                     # sharded service under chaos load
//! ca serve    --smoke --compare serve_smoke.json   # fail on drift / p99 regression
//! ca sweep    --m 1000 --trials 100 --out sweep.json    # big-graph frontiers
//! ca sweep    --m 1000 --trials 100 --compare sweep.json # fail on drift
//! ca graphs                                        # list available topologies
//! ```
//!
//! Graph names: `k<m>` (complete), `line<m>`, `ring<m>`, `star<m>`,
//! `grid<r>x<c>`, `cube<d>`, `torus<r>x<c>`.

use ca_analysis::exact::protocol_s_outcomes;
use ca_analysis::report::Table;
use ca_async::campaign::{evaluate_schedule, run_campaign, CampaignConfig};
use ca_async::{Arrival, CourierSpec, FaultSchedule, ServeConfig, ServeReport};
use ca_core::exec::execute;
use ca_core::graph::Graph;
use ca_core::ids::{ProcessId, Round};
use ca_core::level::{levels, modified_levels};
use ca_core::run::Run;
use ca_core::tape::TapeSet;
use ca_protocols::ProtocolS;
use ca_sim::trace::{render_run, render_trace};
use ca_sim::{simulate, FixedRun, SimConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::ExitCode;

fn parse_graph(name: &str) -> Result<Graph, String> {
    let err = |e: ca_core::ModelError| format!("bad graph `{name}`: {e}");
    if let Some(m) = name.strip_prefix('k') {
        return Graph::complete(m.parse().map_err(|_| format!("bad size in `{name}`"))?)
            .map_err(err);
    }
    if let Some(m) = name.strip_prefix("line") {
        return Graph::line(m.parse().map_err(|_| format!("bad size in `{name}`"))?).map_err(err);
    }
    if let Some(m) = name.strip_prefix("ring") {
        return Graph::ring(m.parse().map_err(|_| format!("bad size in `{name}`"))?).map_err(err);
    }
    if let Some(m) = name.strip_prefix("star") {
        return Graph::star(m.parse().map_err(|_| format!("bad size in `{name}`"))?).map_err(err);
    }
    if let Some(d) = name.strip_prefix("cube") {
        return Graph::hypercube(d.parse().map_err(|_| format!("bad dim in `{name}`"))?)
            .map_err(err);
    }
    type GraphCtor = fn(usize, usize) -> Result<Graph, ca_core::ModelError>;
    for (prefix, ctor) in [
        ("grid", Graph::grid as GraphCtor),
        ("torus", Graph::torus as GraphCtor),
    ] {
        if let Some(dims) = name.strip_prefix(prefix) {
            let (r, c) = dims
                .split_once('x')
                .ok_or_else(|| format!("`{name}` needs RxC dimensions"))?;
            let r = r.parse().map_err(|_| format!("bad rows in `{name}`"))?;
            let c = c.parse().map_err(|_| format!("bad cols in `{name}`"))?;
            return ctor(r, c).map_err(err);
        }
    }
    Err(format!("unknown graph `{name}` (try `ca graphs`)"))
}

#[derive(Debug)]
struct Opts {
    graph: String,
    rounds: u32,
    epsilon: f64,
    t: u64,
    cut: Option<u32>,
    drop_link: Option<(u32, u32, u32)>,
    trials: u64,
    seed: u64,
    deadline: u64,
    schedules: u64,
    max_faults: usize,
    threads: usize,
    mc_trials: u64,
    out: Option<String>,
    replay: Option<String>,
    full: bool,
    stable: bool,
    timed: bool,
    spans: bool,
    bench_trials: Option<u64>,
    compare: Option<String>,
    sweep: bool,
    // `sweep` command: process count for the generated topologies.
    m: usize,
    // `serve` flags. Options so a preset (`--smoke`) keeps its tuning unless
    // a flag is given explicitly.
    instances: Option<u64>,
    shards: Option<usize>,
    queue_bound: Option<usize>,
    budget: Option<u64>,
    retries: Option<u32>,
    arrival_gap: Option<u64>,
    closed: bool,
    smoke: bool,
    report: bool,
    schedule: Option<String>,
    latency: Option<u64>,
    p99_budget: u64,
    // `hunt` flags.
    generations: u32,
    population: usize,
    deadline_set: bool,
    t_set: bool,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            graph: "k2".to_owned(),
            rounds: 8,
            epsilon: 0.125,
            t: 8,
            cut: None,
            drop_link: None,
            trials: 10_000,
            seed: 42,
            deadline: 16,
            schedules: 64,
            max_faults: 4,
            threads: 0,
            mc_trials: 200,
            out: None,
            replay: None,
            full: false,
            stable: false,
            timed: false,
            spans: false,
            bench_trials: None,
            compare: None,
            sweep: false,
            m: 1000,
            instances: None,
            shards: None,
            queue_bound: None,
            budget: None,
            retries: None,
            arrival_gap: None,
            closed: false,
            smoke: false,
            report: false,
            schedule: None,
            latency: None,
            p99_budget: 25,
            generations: 6,
            population: 24,
            deadline_set: false,
            t_set: false,
        }
    }
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut next = |what: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{arg} requires {what}"))
        };
        match arg.as_str() {
            "--graph" => opts.graph = next("a graph name")?,
            "--rounds" => {
                opts.rounds = next("a count")?
                    .parse()
                    .map_err(|_| "bad --rounds".to_owned())?
            }
            "--epsilon" => {
                opts.epsilon = next("a value")?
                    .parse()
                    .map_err(|_| "bad --epsilon".to_owned())?;
                opts.t = (1.0 / opts.epsilon).round() as u64;
                opts.t_set = true;
            }
            "--t" => {
                opts.t = next("a value")?.parse().map_err(|_| "bad --t".to_owned())?;
                opts.epsilon = 1.0 / opts.t as f64;
                opts.t_set = true;
            }
            "--cut" => {
                opts.cut = Some(
                    next("a round")?
                        .parse()
                        .map_err(|_| "bad --cut".to_owned())?,
                )
            }
            "--drop-link" => {
                let spec = next("FROM:TO:ROUND")?;
                let parts: Vec<_> = spec.split(':').collect();
                if parts.len() != 3 {
                    return Err("--drop-link needs FROM:TO:ROUND".to_owned());
                }
                opts.drop_link = Some((
                    parts[0].parse().map_err(|_| "bad FROM".to_owned())?,
                    parts[1].parse().map_err(|_| "bad TO".to_owned())?,
                    parts[2].parse().map_err(|_| "bad ROUND".to_owned())?,
                ));
            }
            "--trials" => {
                let v: u64 = next("a count")?
                    .parse()
                    .map_err(|_| "bad --trials".to_owned())?;
                opts.trials = v;
                opts.bench_trials = Some(v);
            }
            "--full" => opts.full = true,
            "--sweep" => opts.sweep = true,
            "--m" => opts.m = next("a count")?.parse().map_err(|_| "bad --m".to_owned())?,
            "--stable" => opts.stable = true,
            "--timed" => opts.timed = true,
            "--spans" => opts.spans = true,
            "--seed" => {
                opts.seed = next("a seed")?
                    .parse()
                    .map_err(|_| "bad --seed".to_owned())?
            }
            "--deadline" => {
                opts.deadline = next("a time")?
                    .parse()
                    .map_err(|_| "bad --deadline".to_owned())?;
                opts.deadline_set = true;
            }
            "--schedules" => {
                opts.schedules = next("a count")?
                    .parse()
                    .map_err(|_| "bad --schedules".to_owned())?
            }
            "--max-faults" => {
                opts.max_faults = next("a count")?
                    .parse()
                    .map_err(|_| "bad --max-faults".to_owned())?
            }
            "--threads" => {
                opts.threads = next("a count")?
                    .parse()
                    .map_err(|_| "bad --threads".to_owned())?
            }
            "--mc-trials" => {
                opts.mc_trials = next("a count")?
                    .parse()
                    .map_err(|_| "bad --mc-trials".to_owned())?
            }
            "--out" => opts.out = Some(next("a file path")?),
            "--compare" => opts.compare = Some(next("an old bench report")?),
            "--replay" => opts.replay = Some(next("a schedule file")?),
            "--instances" => {
                opts.instances = Some(
                    next("a count")?
                        .parse()
                        .map_err(|_| "bad --instances".to_owned())?,
                )
            }
            "--shards" => {
                opts.shards = Some(
                    next("a count")?
                        .parse()
                        .map_err(|_| "bad --shards".to_owned())?,
                )
            }
            "--queue-bound" => {
                opts.queue_bound = Some(
                    next("a count")?
                        .parse()
                        .map_err(|_| "bad --queue-bound".to_owned())?,
                )
            }
            "--budget" => {
                opts.budget = Some(
                    next("ticks")?
                        .parse()
                        .map_err(|_| "bad --budget".to_owned())?,
                )
            }
            "--retries" => {
                opts.retries = Some(
                    next("a count")?
                        .parse()
                        .map_err(|_| "bad --retries".to_owned())?,
                )
            }
            "--arrival-gap" => {
                opts.arrival_gap = Some(
                    next("ticks")?
                        .parse()
                        .map_err(|_| "bad --arrival-gap".to_owned())?,
                )
            }
            "--closed" => opts.closed = true,
            "--smoke" => opts.smoke = true,
            "--report" => opts.report = true,
            "--schedule" => opts.schedule = Some(next("a schedule file")?),
            "--latency" => {
                opts.latency = Some(
                    next("ticks")?
                        .parse()
                        .map_err(|_| "bad --latency".to_owned())?,
                )
            }
            "--p99-budget" => {
                opts.p99_budget = next("a percentage")?
                    .parse()
                    .map_err(|_| "bad --p99-budget".to_owned())?
            }
            "--generations" => {
                opts.generations = next("a count")?
                    .parse()
                    .map_err(|_| "bad --generations".to_owned())?
            }
            "--population" => {
                opts.population = next("a count")?
                    .parse()
                    .map_err(|_| "bad --population".to_owned())?
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(opts)
}

fn build_run(graph: &Graph, opts: &Opts) -> Run {
    let mut run = Run::good(graph, opts.rounds);
    if let Some(cut) = opts.cut {
        run.cut_from_round(Round::new(cut));
    }
    if let Some((from, to, round)) = opts.drop_link {
        run.cut_link_from_round(ProcessId::new(from), ProcessId::new(to), Round::new(round));
    }
    run
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().map(String::as_str) else {
        eprintln!(
            "usage: ca <levels|trace|simulate|exact|chaos|hunt|bench|profile|serve|sweep|graphs> \
             [flags] (see --help)"
        );
        return ExitCode::FAILURE;
    };
    if command == "--help" || command == "-h" {
        println!(
            "ca — explore the coordinated-attack model\n\
             commands: levels, trace, simulate, exact, chaos, hunt, bench, profile, serve, \
             sweep, graphs\n\
             flags: --graph NAME --rounds N --epsilon E | --t T --cut R \
             --drop-link F:T:R --trials K --seed S\n\
             exact: [--sweep] [--out FILE] [--compare OLD.json] — one run's \
             exact outcome distribution; with --sweep, the exhaustive worst \
             case over ALL runs (every input subset × delivery pattern) via \
             the level-vector DP, as byte-stable JSON: the full §8 curve at \
             --rounds N is polynomial in N, where enumeration stops at \
             2^24 executions; --compare fails on any drift from a baseline\n\
             chaos: --deadline T --schedules K --max-faults F --threads W \
             --mc-trials K --out FILE --replay FILE [--spans]\n\
             hunt: [--generations G] [--population P] [--budget K] \
             [--rounds N] [--t T] [--max-faults F] [--seed S] [--threads W] \
             [--out FILE] [--replay FILE] [--compare OLD.json] [--spans] — \
             adaptive adversary search for the paper's worst-case fault \
             schedule; the report is byte-stable in (graph, config) at any \
             --threads; --replay re-scores a saved schedule; --compare fails \
             if the report drifted from a baseline\n\
             bench: [--full] [--trials K] [--stable] [--out FILE] \
             [--compare OLD.json] — time every experiment, write \
             BENCH_experiments.json; --compare diffs against an old report \
             and fails on a >25% throughput regression\n\
             profile: [--full] [--trials K] [--threads W] [--timed] [--spans] \
             [--out FILE] [--compare OLD.json] — capture engine counters, \
             histograms, and span trees per experiment (byte-stable by \
             default; --timed adds clocks); --compare fails if any stable \
             counter drifted (needs an obs-enabled build)\n\
             serve: [--smoke] [--instances N] [--shards N] [--queue-bound N] \
             [--budget T] [--retries N] [--deadline T] [--t T] \
             [--arrival-gap G | --closed] [--schedule FILE | --latency L] \
             [--seed S] [--threads W] [--timed] [--report] [--out FILE] \
             [--compare OLD.json] [--p99-budget PCT] — run a sharded \
             coordination service (instances of async S over one courier) \
             under load; the aggregate report is byte-stable in (scale, \
             seed) at any --threads; --compare fails if stable counters \
             drift or p99 decision latency regresses past the budget \
             (default 25%)\n\
             sweep: [--m N] [--trials K] [--seed S] [--threads W] \
             [--out FILE] [--compare OLD.json] — topology × weak-adversary \
             tradeoff frontiers on generated big graphs (grid, small world, \
             scale free × iid and Gilbert–Elliott loss) via the sparse level \
             frontier; byte-stable JSON on stdout (table on stderr) at any \
             --threads; --compare fails on any drift from a baseline"
        );
        return ExitCode::SUCCESS;
    }
    if command == "graphs" {
        println!("k<m>  line<m>  ring<m>  star<m>  grid<r>x<c>  torus<r>x<c>  cube<d>");
        return ExitCode::SUCCESS;
    }
    let opts = match parse_opts(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let graph = match parse_graph(&opts.graph) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let run = build_run(&graph, &opts);

    match command {
        "levels" => {
            print!("{}", render_run(&run));
            let l = levels(&run);
            let ml = modified_levels(&run);
            let mut table = Table::new(["process", "L_i(R)", "ML_i(R)"]);
            for i in graph.vertices() {
                table.push_row([
                    i.to_string(),
                    l.level(i).to_string(),
                    ml.level(i).to_string(),
                ]);
            }
            println!("\n{table}");
            println!("L(R) = {}, ML(R) = {}", l.min_level(), ml.min_level());
        }
        "trace" => {
            let proto = ProtocolS::new(opts.epsilon);
            let mut rng = StdRng::seed_from_u64(opts.seed);
            let tapes = TapeSet::random(&mut rng, graph.len(), 64);
            let ex = execute(&proto, &graph, &run, &tapes);
            print!("{}", render_trace(&graph, &run, &ex));
        }
        "simulate" => {
            let proto = ProtocolS::new(opts.epsilon);
            let report = simulate(
                &proto,
                &graph,
                &FixedRun::new(run),
                SimConfig::new(opts.trials, opts.seed),
            );
            println!("{report}");
        }
        "exact" => {
            if opts.sweep {
                // Exhaustive worst case over ALL runs via the level-vector
                // DP, as byte-stable JSON: no clocks, interned-state order,
                // exact rationals. `--compare` gates byte drift against a
                // committed baseline.
                let spec = ca_analysis::level_dp::DpSpec::protocol_s(opts.t);
                let n = opts.rounds;
                let mut checkpoints: Vec<u32> = [1, n / 4, n / 2, 3 * n / 4, n]
                    .into_iter()
                    .filter(|&c| c >= 1)
                    .collect();
                checkpoints.dedup();
                let report = match ca_analysis::level_dp::sweep(&graph, n, &spec, &checkpoints) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("error: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                let json = serde::json::to_string_pretty(&report)
                    .expect("sweep reports are always serializable");
                println!("{json}");
                // Baseline is read before --out, like `ca bench --compare`.
                let old: Option<ca_analysis::level_dp::SweepReport> = match &opts.compare {
                    Some(path) => {
                        let text = match std::fs::read_to_string(path) {
                            Ok(t) => t,
                            Err(e) => {
                                eprintln!("error: cannot read `{path}`: {e}");
                                return ExitCode::FAILURE;
                            }
                        };
                        match serde::json::from_str(&text) {
                            Ok(r) => Some(r),
                            Err(e) => {
                                eprintln!("error: bad sweep report in `{path}`: {e}");
                                return ExitCode::FAILURE;
                            }
                        }
                    }
                    None => None,
                };
                if let Some(path) = &opts.out {
                    if let Err(e) = std::fs::write(path, format!("{json}\n")) {
                        eprintln!("error: cannot write `{path}`: {e}");
                        return ExitCode::FAILURE;
                    }
                }
                if let Some(old) = old {
                    if old != report {
                        eprintln!(
                            "error: exact sweep drifted from the baseline \
                             (exact rationals disagree — not timer noise)"
                        );
                        return ExitCode::FAILURE;
                    }
                    eprintln!("exact compare: byte-identical to the baseline");
                }
            } else {
                let out = protocol_s_outcomes(&graph, &run, opts.t);
                let ml = modified_levels(&run).min_level();
                println!("ML(R) = {ml}, ε = 1/{}", opts.t);
                println!(
                    "Pr[TA|R] = {}   Pr[NA|R] = {}   Pr[PA|R] = {}",
                    out.ta, out.na, out.pa
                );
            }
        }
        "bench" => {
            let config = ca_bench::bench::BenchConfig {
                full: opts.full,
                trials: opts.bench_trials,
                stable: opts.stable,
            };
            let report = ca_bench::bench::run_bench(&config);
            let json = report.to_json_pretty();
            println!("{json}");
            // Read the baseline before --out runs, so comparing against the
            // very file being refreshed still diffs the committed bytes.
            let old: Option<ca_bench::bench::BenchReport> = match &opts.compare {
                Some(path) => {
                    let text = match std::fs::read_to_string(path) {
                        Ok(t) => t,
                        Err(e) => {
                            eprintln!("error: cannot read `{path}`: {e}");
                            return ExitCode::FAILURE;
                        }
                    };
                    match serde::json::from_str(&text) {
                        Ok(r) => Some(r),
                        Err(e) => {
                            eprintln!("error: bad bench report in `{path}`: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                }
                None => None,
            };
            if let Some(path) = &opts.out {
                if let Err(e) = std::fs::write(path, format!("{json}\n")) {
                    eprintln!("error: cannot write `{path}`: {e}");
                    return ExitCode::FAILURE;
                }
            }
            if let Some(old) = old {
                let cmp = ca_bench::bench::compare_reports(&old, &report);
                print!("{cmp}");
                let regressions = cmp.regressions();
                if !regressions.is_empty() {
                    eprintln!(
                        "error: throughput regressed >{}% on: {}",
                        ca_bench::bench::REGRESSION_THRESHOLD_PCT,
                        regressions.join(", ")
                    );
                    return ExitCode::FAILURE;
                }
            }
        }
        "profile" => {
            if !ca_obs::ENABLED {
                eprintln!(
                    "error: this `ca` was built without observability; \
                     rebuild with the default features (or `--features obs`) \
                     to use `ca profile`"
                );
                return ExitCode::FAILURE;
            }
            if opts.threads > 0 {
                // Pin the worker count process-wide (experiments size their
                // own pools): profiles must be identical at any width, and
                // this is how the golden test proves it.
                std::env::set_var("CA_THREADS", opts.threads.to_string());
            }
            let config = ca_bench::profile::ProfileConfig {
                full: opts.full,
                trials: opts.bench_trials,
                timed: opts.timed,
            };
            let profiled = ca_bench::profile::run_profile(&config);
            let json = profiled.report.to_json_pretty();
            println!("{json}");
            if opts.spans {
                // Human-readable dump on stderr, keeping stdout pure JSON.
                eprint!("{}", ca_obs::render(&profiled.totals_snapshot, opts.timed));
            }
            // Baseline is read before --out, like `ca bench --compare`.
            let old: Option<ca_bench::profile::ProfileReport> = match &opts.compare {
                Some(path) => {
                    let text = match std::fs::read_to_string(path) {
                        Ok(t) => t,
                        Err(e) => {
                            eprintln!("error: cannot read `{path}`: {e}");
                            return ExitCode::FAILURE;
                        }
                    };
                    match serde::json::from_str(&text) {
                        Ok(r) => Some(r),
                        Err(e) => {
                            eprintln!("error: bad profile report in `{path}`: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                }
                None => None,
            };
            if let Some(path) = &opts.out {
                if let Err(e) = std::fs::write(path, format!("{json}\n")) {
                    eprintln!("error: cannot write `{path}`: {e}");
                    return ExitCode::FAILURE;
                }
            }
            if let Some(old) = old {
                let cmp = ca_bench::profile::compare_profiles(&old, &profiled.report);
                print!("{cmp}");
                let changed = cmp.changed();
                if !changed.is_empty() {
                    eprintln!(
                        "error: stable counters drifted from the baseline: {}",
                        changed.join(", ")
                    );
                    return ExitCode::FAILURE;
                }
            }
        }
        "serve" => {
            // Base config: the fixed smoke preset (chaos schedule + open-loop
            // overload) or a plain reliable closed-loop service sized by
            // --graph. Explicit flags override either base.
            let mut config = if opts.smoke {
                ServeConfig::smoke(opts.seed)
            } else {
                ServeConfig::new(graph.len(), opts.t, 512, opts.seed)
            };
            if opts.smoke && opts.t_set {
                config.t = opts.t;
            }
            if opts.deadline_set {
                config.deadline = opts.deadline;
            }
            if let Some(v) = opts.instances {
                config.instances = v;
            }
            if let Some(v) = opts.shards {
                config.shards = v;
            }
            if let Some(v) = opts.queue_bound {
                config.queue_bound = v;
            }
            if let Some(v) = opts.budget {
                config.budget = v;
            }
            if let Some(v) = opts.retries {
                config.retries = v;
            }
            match (opts.arrival_gap, opts.closed) {
                (Some(_), true) => {
                    eprintln!("error: --arrival-gap and --closed are mutually exclusive");
                    return ExitCode::FAILURE;
                }
                (Some(gap), false) => config.arrival = Arrival::Open { mean_gap: gap },
                (None, true) => config.arrival = Arrival::Closed,
                (None, false) => {}
            }
            if opts.schedule.is_some() && opts.latency.is_some() {
                eprintln!("error: --schedule and --latency are mutually exclusive");
                return ExitCode::FAILURE;
            }
            if let Some(path) = &opts.schedule {
                let text = match std::fs::read_to_string(path) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("error: cannot read `{path}`: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                let schedule = match FaultSchedule::from_json(&text) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("error: bad schedule in `{path}`: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                config.courier = CourierSpec::Chaos { schedule };
            } else if let Some(latency) = opts.latency {
                config.courier = CourierSpec::Reliable { latency };
            }
            config.threads = opts.threads;
            config.timed = opts.timed;
            let report = match ca_async::run_serve(&config) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let json = report.to_json_pretty();
            if opts.report {
                // Pure JSON on stdout, like `ca profile`.
                println!("{json}");
            } else {
                let t = &report.totals;
                println!(
                    "serve: {} instances over {} shards — {} decided, {} shed, \
                     {} timed out, {} undecided, {} failed",
                    t.instances,
                    config.shards,
                    t.decided,
                    t.shed,
                    t.timed_out,
                    t.undecided,
                    t.failed
                );
                println!(
                    "verdicts: TA={} NA={} PA={}; retries={}, attempts={}",
                    t.verdicts.total_attack,
                    t.verdicts.no_attack,
                    t.verdicts.partial_attack,
                    t.retries,
                    t.attempts
                );
                println!(
                    "p99 decision latency <= {} ticks; virtual makespan {} ticks; \
                     restarts={}, poisoned={}",
                    t.p99_decision_ticks, t.virtual_makespan, t.shard_restarts, t.shards_poisoned
                );
                if opts.timed {
                    println!(
                        "wall: {} ms ({:.0} instances/sec)",
                        t.wall_ms, t.instances_per_sec
                    );
                }
            }
            // Baseline is read before --out, like `ca bench --compare`.
            let old: Option<ServeReport> = match &opts.compare {
                Some(path) => {
                    let text = match std::fs::read_to_string(path) {
                        Ok(t) => t,
                        Err(e) => {
                            eprintln!("error: cannot read `{path}`: {e}");
                            return ExitCode::FAILURE;
                        }
                    };
                    match ServeReport::from_json(&text) {
                        Ok(r) => Some(r),
                        Err(e) => {
                            eprintln!("error: bad serve report in `{path}`: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                }
                None => None,
            };
            if let Some(path) = &opts.out {
                if let Err(e) = std::fs::write(path, format!("{json}\n")) {
                    eprintln!("error: cannot write `{path}`: {e}");
                    return ExitCode::FAILURE;
                }
            }
            if let Some(old) = old {
                let problems = ca_async::compare_reports(&old, &report, opts.p99_budget);
                if !problems.is_empty() {
                    for p in &problems {
                        eprintln!("  {p}");
                    }
                    eprintln!(
                        "error: serve report regressed from the baseline \
                         ({} problem(s))",
                        problems.len()
                    );
                    return ExitCode::FAILURE;
                }
                eprintln!("serve compare: stable counters match, p99 within budget");
            }
        }
        "sweep" => {
            // Big-graph scenario sweep: observed TA/PA/NA frontiers per
            // topology × weak adversary, as byte-stable JSON (no clocks,
            // integer tallies, per-trial seed streams). The human-readable
            // table goes to stderr so stdout stays pure JSON.
            let mut config = ca_analysis::ScenarioSweepConfig::default_at(
                opts.m,
                opts.bench_trials.unwrap_or(100),
                opts.seed,
            );
            config.threads = opts.threads;
            let report = match ca_analysis::run_sweep(&config) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let json = serde::json::to_string_pretty(&report)
                .expect("sweep reports are always serializable");
            println!("{json}");
            eprintln!("{}", report.table());
            // Baseline is read before --out, like `ca bench --compare`.
            let old: Option<ca_analysis::ScenarioSweepReport> = match &opts.compare {
                Some(path) => {
                    let text = match std::fs::read_to_string(path) {
                        Ok(t) => t,
                        Err(e) => {
                            eprintln!("error: cannot read `{path}`: {e}");
                            return ExitCode::FAILURE;
                        }
                    };
                    match serde::json::from_str(&text) {
                        Ok(r) => Some(r),
                        Err(e) => {
                            eprintln!("error: bad sweep report in `{path}`: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                }
                None => None,
            };
            if let Some(path) = &opts.out {
                if let Err(e) = std::fs::write(path, format!("{json}\n")) {
                    eprintln!("error: cannot write `{path}`: {e}");
                    return ExitCode::FAILURE;
                }
            }
            if let Some(old) = old {
                if old != report {
                    eprintln!(
                        "error: scenario sweep drifted from the baseline \
                         (integer tallies disagree — not timer noise)"
                    );
                    return ExitCode::FAILURE;
                }
                eprintln!("sweep compare: byte-identical to the baseline");
            }
        }
        "chaos" => {
            let config = CampaignConfig {
                schedules: opts.schedules,
                seed: opts.seed,
                deadline: opts.deadline,
                t: opts.t,
                max_faults: opts.max_faults,
                threads: opts.threads,
                mc_trials: opts.mc_trials,
            };
            let json = if let Some(path) = &opts.replay {
                // Replay a saved (typically shrunk) schedule against the
                // oracles instead of sampling a fresh campaign.
                let text = match std::fs::read_to_string(path) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("error: cannot read `{path}`: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                let schedule = match FaultSchedule::from_json(&text) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("error: bad schedule in `{path}`: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                let result = evaluate_schedule(&graph, &config, 0, schedule);
                serde::json::to_string_pretty(&result)
                    .expect("schedule results are always serializable")
            } else {
                run_campaign(&graph, &config).to_json_pretty()
            };
            println!("{json}");
            if opts.spans {
                if ca_obs::ENABLED {
                    // Campaign metrics land in the global sink; dump the
                    // span tree (with real clocks) on stderr.
                    eprint!("{}", ca_obs::render(&ca_obs::global_snapshot(), true));
                } else {
                    eprintln!(
                        "note: --spans needs an observability-enabled build \
                         (the default `ca`); nothing was recorded"
                    );
                }
            }
            if let Some(path) = &opts.out {
                if let Err(e) = std::fs::write(path, format!("{json}\n")) {
                    eprintln!("error: cannot write `{path}`: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        "hunt" => {
            let mut config = ca_async::HuntConfig::quick(opts.seed);
            config.generations = opts.generations;
            config.population = opts.population.max(1);
            if let Some(b) = opts.budget {
                config.budget = b;
            }
            config.rounds = opts.rounds;
            config.t = opts.t;
            config.max_faults = opts.max_faults;
            config.threads = opts.threads;
            config.elites = (config.population / 6).max(2).min(config.population);
            if let Some(path) = &opts.replay {
                // Re-score a saved (typically shrunk) schedule instead of
                // running a fresh search.
                let text = match std::fs::read_to_string(path) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("error: cannot read `{path}`: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                let schedule = match FaultSchedule::from_json(&text) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("error: bad schedule in `{path}`: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                let result = ca_async::replay_schedule(&graph, &config, schedule);
                let json = serde::json::to_string_pretty(&result)
                    .expect("candidate results are always serializable");
                println!("{json}");
                if let Some(path) = &opts.out {
                    if let Err(e) = std::fs::write(path, format!("{json}\n")) {
                        eprintln!("error: cannot write `{path}`: {e}");
                        return ExitCode::FAILURE;
                    }
                }
                return ExitCode::SUCCESS;
            }
            let report = ca_async::run_hunt(&graph, &config);
            let json = report.to_json_pretty();
            println!("{json}");
            if opts.spans {
                if ca_obs::ENABLED {
                    eprint!("{}", ca_obs::render(&ca_obs::global_snapshot(), true));
                } else {
                    eprintln!(
                        "note: --spans needs an observability-enabled build \
                         (the default `ca`); nothing was recorded"
                    );
                }
            }
            // Baseline is read before --out, like `ca bench --compare`.
            let old: Option<ca_async::HuntReport> = match &opts.compare {
                Some(path) => {
                    let text = match std::fs::read_to_string(path) {
                        Ok(t) => t,
                        Err(e) => {
                            eprintln!("error: cannot read `{path}`: {e}");
                            return ExitCode::FAILURE;
                        }
                    };
                    match ca_async::HuntReport::from_json(&text) {
                        Ok(r) => Some(r),
                        Err(e) => {
                            eprintln!("error: bad hunt report in `{path}`: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                }
                None => None,
            };
            if let Some(path) = &opts.out {
                if let Err(e) = std::fs::write(path, format!("{json}\n")) {
                    eprintln!("error: cannot write `{path}`: {e}");
                    return ExitCode::FAILURE;
                }
            }
            if let Some(old) = old {
                if !ca_async::hunt::reports_match(&report, &old) {
                    eprintln!("error: hunt report regressed from the baseline (byte drift)");
                    return ExitCode::FAILURE;
                }
                eprintln!("hunt compare: byte-identical modulo --threads");
            }
        }
        other => {
            eprintln!("error: unknown command `{other}`");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
