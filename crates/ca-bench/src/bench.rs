//! The `ca bench` engine: wall-clock timing of every experiment.
//!
//! Times each registry experiment (E1–E12 plus the X* extensions, including
//! the asynchronous X1) at a chosen [`Scale`] and produces a JSON report —
//! the `BENCH_experiments.json` perf trajectory. Experiments run serially so
//! the per-experiment wall times are honest (no cross-experiment core
//! contention); each experiment still parallelizes internally.
//!
//! The JSON is byte-stable: struct field order is fixed, the registry order
//! is fixed, and every value other than the clock readings is a
//! deterministic function of the scale. With timing suppressed
//! ([`BenchConfig::stable`]) the whole report is deterministic, which the
//! golden tests use to pin the format.

use ca_analysis::experiments::{all_experiments, Experiment, Scale};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Configuration for one bench sweep.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BenchConfig {
    /// Use [`Scale::full`] instead of [`Scale::quick`].
    pub full: bool,
    /// Override the scale's trial count (for fast smoke runs).
    pub trials: Option<u64>,
    /// Zero out all clock readings so the report is byte-deterministic.
    pub stable: bool,
}

impl BenchConfig {
    /// The scale this configuration resolves to.
    pub fn scale(&self) -> Scale {
        let mut scale = if self.full {
            Scale::full()
        } else {
            Scale::quick()
        };
        if let Some(trials) = self.trials {
            scale.trials = trials;
        }
        scale
    }
}

/// One experiment's timing.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BenchEntry {
    /// Experiment id (`"E1"`, …).
    pub id: String,
    /// Whether the experiment's paper-shape checks passed.
    pub passed: bool,
    /// Wall time in milliseconds (0 when timing is suppressed).
    pub wall_ms: f64,
    /// Monte Carlo trials per wall second (0 when timing is suppressed).
    ///
    /// Uses the scale's per-probability trial count as the work unit — a
    /// throughput proxy that is comparable release to release at a fixed
    /// scale (exact-only experiments like E9 report their table rebuild
    /// rate in the same unit). The synthetic [`DP_PROBE_ID`] entry uses DP
    /// frontier states visited per second instead.
    pub trials_per_sec: f64,
}

/// Id of the synthetic level-DP throughput entry appended after the
/// experiment registry: one exact sweep of the §8 curve instance, reporting
/// **states visited per second** in [`BenchEntry::trials_per_sec`]. Because
/// [`compare_reports`] keys entries by id, `--compare` gates DP throughput
/// regressions exactly like the experiments.
pub const DP_PROBE_ID: &str = "DP";

/// Id of the synthetic big-graph scenario-sweep throughput entry appended
/// after [`DP_PROBE_ID`]: one `ca sweep` workload (m = 1000 topologies ×
/// weak adversaries through the sparse level frontier), reporting
/// **frontier-classified trials per second** in
/// [`BenchEntry::trials_per_sec`]. This is the regression gate for the
/// sparse gossip path, which the per-experiment entries (tiny graphs)
/// barely exercise.
pub const SWEEP_PROBE_ID: &str = "SWEEP";

/// The full bench report (`BENCH_experiments.json`).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// Report format version.
    pub schema: u32,
    /// `"quick"` or `"full"` (the base scale before any trial override).
    pub scale: String,
    /// Monte Carlo trials per estimated probability.
    pub trials: u64,
    /// Base seed of the sweep.
    pub seed: u64,
    /// Whether the clock readings are real (false under `--stable`).
    pub timed: bool,
    /// Per-experiment timings, in registry order.
    pub experiments: Vec<BenchEntry>,
    /// Total wall time across all experiments, milliseconds.
    pub total_wall_ms: f64,
}

impl BenchReport {
    /// Serializes the report as pretty JSON (deterministic field and
    /// registry order).
    pub fn to_json_pretty(&self) -> String {
        serde::json::to_string_pretty(self).expect("bench reports are always serializable")
    }
}

/// The full registry `ca bench` sweeps: the synchronous suite plus the
/// asynchronous extension experiments, in id order (E1–E12, X1–X7). The
/// asynchronous X1 is merged into its numeric slot rather than appended, so
/// the report order matches the registry ids.
pub fn bench_registry() -> Vec<Box<dyn Experiment>> {
    let mut registry = all_experiments();
    registry.extend(ca_async::experiments::extension_experiments());
    registry.sort_by_key(|e| id_sort_key(e.id()));
    registry
}

/// Orders ids like `"E9"` / `"E10"` / `"X1"` by (family letter, number) —
/// lexicographic string order would put E10 before E2.
fn id_sort_key(id: &str) -> (char, u32) {
    let family = id.chars().next().unwrap_or('?');
    let number = id[family.len_utf8()..].parse().unwrap_or(u32::MAX);
    (family, number)
}

/// Runs every experiment once at the configured scale, timing each.
pub fn run_bench(config: &BenchConfig) -> BenchReport {
    let scale = config.scale();
    let mut experiments = Vec::new();
    let mut total_ms = 0.0;
    for experiment in bench_registry() {
        let start = Instant::now();
        let result = experiment.run(scale);
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        total_ms += wall_ms;
        let (wall_ms, trials_per_sec) = if config.stable {
            (0.0, 0.0)
        } else {
            (wall_ms, scale.trials as f64 / (wall_ms / 1e3))
        };
        experiments.push(BenchEntry {
            id: result.id,
            passed: result.passed,
            wall_ms,
            trials_per_sec,
        });
    }
    experiments.push(dp_probe(&scale, config.stable, &mut total_ms));
    experiments.push(sweep_probe(&scale, config.stable, &mut total_ms));
    BenchReport {
        schema: 1,
        scale: if config.full { "full" } else { "quick" }.to_owned(),
        trials: scale.trials,
        seed: scale.seed,
        timed: !config.stable,
        experiments,
        total_wall_ms: if config.stable { 0.0 } else { total_ms },
    }
}

/// The level-DP throughput probe behind the [`DP_PROBE_ID`] entry: one
/// exact sweep of the X6 instance (K3, `t = N`, paper scale from
/// `trials ≥ 2000`, smoke-sized below), timed, with the curve's shape
/// checks folded into `passed`. States visited per second is the
/// throughput unit — the DP's work is frontier expansions, not trials.
fn dp_probe(scale: &Scale, stable: bool, total_ms: &mut f64) -> BenchEntry {
    use ca_analysis::level_dp::{self, DpSpec};
    use ca_core::rational::Rational;

    let n: u32 = if scale.trials >= 2_000 { 1_000 } else { 64 };
    let t = u64::from(n);
    let graph = ca_core::graph::Graph::complete(3).expect("graph");
    let spec = DpSpec::protocol_s(t);
    let start = Instant::now();
    let sweep = level_dp::sweep(&graph, n, &spec, &[n]).expect("K3 is DP-eligible");
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    *total_ms += wall_ms;
    let passed = sweep.first_certain_round == Some(n) && sweep.u_s == Rational::new(1, t as i128);
    let (wall_ms, states_per_sec) = if stable {
        (0.0, 0.0)
    } else {
        (wall_ms, sweep.stats.states_visited as f64 / (wall_ms / 1e3))
    };
    BenchEntry {
        id: DP_PROBE_ID.to_owned(),
        passed,
        wall_ms,
        trials_per_sec: states_per_sec,
    }
}

/// The scenario-sweep throughput probe behind the [`SWEEP_PROBE_ID`] entry:
/// the default `ca sweep` workload (paper scale m = 1000 from
/// `trials ≥ 2000`, smoke-sized below), timed end to end — topology
/// generation, weak-adversary edge sampling, and the sparse level frontier.
/// `passed` folds in the tradeoff-shape check (TA monotone nonincreasing in
/// `t`, exact under common random numbers). Classified trials per second is
/// the throughput unit.
fn sweep_probe(scale: &Scale, stable: bool, total_ms: &mut f64) -> BenchEntry {
    use ca_analysis::sweep::{run_sweep, ScenarioSweepConfig};

    let (m, trials) = if scale.trials >= 2_000 {
        (1_000, 100)
    } else {
        (96, 12)
    };
    let config = ScenarioSweepConfig::default_at(m, trials, scale.seed);
    let start = Instant::now();
    let report = run_sweep(&config).expect("default sweep config is well-formed");
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    *total_ms += wall_ms;
    let passed = report.cells.len() == config.topologies.len() * config.adversaries.len()
        && report.cells.iter().all(|cell| {
            cell.points
                .windows(2)
                .all(|w| w[0].ta.successes >= w[1].ta.successes)
        });
    let classified: u64 = report.cells.iter().map(|c| c.trials).sum();
    let (wall_ms, classified_per_sec) = if stable {
        (0.0, 0.0)
    } else {
        (wall_ms, classified as f64 / (wall_ms / 1e3))
    };
    BenchEntry {
        id: SWEEP_PROBE_ID.to_owned(),
        passed,
        wall_ms,
        trials_per_sec: classified_per_sec,
    }
}

/// Throughput drop (percent) beyond which [`compare_reports`] flags an
/// experiment as regressed.
pub const REGRESSION_THRESHOLD_PCT: f64 = 25.0;

/// Wall-time floor (milliseconds) below which an experiment is too fast to
/// regression-gate: at sub-10ms scale a single scheduler blip swings the
/// reading past [`REGRESSION_THRESHOLD_PCT`], so such entries still report
/// their deltas but never flag a regression.
pub const MIN_REGRESSION_WALL_MS: f64 = 10.0;

/// One experiment's wall/throughput deltas between two bench reports.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CompareEntry {
    /// Experiment id (`"E1"`, …).
    pub id: String,
    /// Old wall time, milliseconds.
    pub old_wall_ms: f64,
    /// New wall time, milliseconds.
    pub new_wall_ms: f64,
    /// Old throughput, trials per second.
    pub old_trials_per_sec: f64,
    /// New throughput, trials per second.
    pub new_trials_per_sec: f64,
    /// Throughput change in percent (positive = faster). 0 when either side
    /// is untimed.
    pub throughput_delta_pct: f64,
    /// Whether the throughput dropped by more than
    /// [`REGRESSION_THRESHOLD_PCT`].
    pub regression: bool,
}

/// The result of diffing two bench reports by experiment id.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BenchComparison {
    /// Per-experiment deltas, in the new report's order.
    pub entries: Vec<CompareEntry>,
    /// Ids present only in the old report.
    pub only_in_old: Vec<String>,
    /// Ids present only in the new report.
    pub only_in_new: Vec<String>,
}

impl BenchComparison {
    /// Ids of the experiments whose throughput regressed past the threshold.
    pub fn regressions(&self) -> Vec<&str> {
        self.entries
            .iter()
            .filter(|e| e.regression)
            .map(|e| e.id.as_str())
            .collect()
    }
}

impl std::fmt::Display for BenchComparison {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:<5} {:>12} {:>12} {:>14} {:>14} {:>9}",
            "id", "old ms", "new ms", "old trials/s", "new trials/s", "delta"
        )?;
        for e in &self.entries {
            writeln!(
                f,
                "{:<5} {:>12.1} {:>12.1} {:>14.0} {:>14.0} {:>+8.1}%{}",
                e.id,
                e.old_wall_ms,
                e.new_wall_ms,
                e.old_trials_per_sec,
                e.new_trials_per_sec,
                e.throughput_delta_pct,
                if e.regression { "  REGRESSION" } else { "" }
            )?;
        }
        for id in &self.only_in_old {
            writeln!(f, "{id:<5} only in old report")?;
        }
        for id in &self.only_in_new {
            writeln!(f, "{id:<5} only in new report")?;
        }
        Ok(())
    }
}

/// Diffs two bench reports by experiment id: per-experiment wall and
/// throughput deltas, flagging any experiment whose throughput dropped by
/// more than [`REGRESSION_THRESHOLD_PCT`]. Untimed entries (zero clocks, as
/// produced under `--stable`'s suppressed timing or a zero-length run)
/// compare with a zero delta and never regress — only real clock readings
/// can fail a comparison. Entries faster than [`MIN_REGRESSION_WALL_MS`] on
/// either side report their deltas but never flag a regression: at that
/// scale the reading is timer noise, not throughput.
pub fn compare_reports(old: &BenchReport, new: &BenchReport) -> BenchComparison {
    let mut entries = Vec::new();
    let mut only_in_new = Vec::new();
    for entry in &new.experiments {
        let Some(before) = old.experiments.iter().find(|e| e.id == entry.id) else {
            only_in_new.push(entry.id.clone());
            continue;
        };
        let timed = before.trials_per_sec > 0.0 && entry.trials_per_sec > 0.0;
        let delta_pct = if timed {
            (entry.trials_per_sec / before.trials_per_sec - 1.0) * 100.0
        } else {
            0.0
        };
        let gateable =
            before.wall_ms >= MIN_REGRESSION_WALL_MS && entry.wall_ms >= MIN_REGRESSION_WALL_MS;
        entries.push(CompareEntry {
            id: entry.id.clone(),
            old_wall_ms: before.wall_ms,
            new_wall_ms: entry.wall_ms,
            old_trials_per_sec: before.trials_per_sec,
            new_trials_per_sec: entry.trials_per_sec,
            throughput_delta_pct: delta_pct,
            regression: gateable && delta_pct < -REGRESSION_THRESHOLD_PCT,
        });
    }
    let only_in_old = old
        .experiments
        .iter()
        .filter(|e| new.experiments.iter().all(|n| n.id != e.id))
        .map(|e| e.id.clone())
        .collect();
    BenchComparison {
        entries,
        only_in_old,
        only_in_new,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_reports_are_deterministic() {
        let config = BenchConfig {
            full: false,
            trials: Some(50),
            stable: true,
        };
        let a = run_bench(&config);
        let b = run_bench(&config);
        assert_eq!(a, b);
        assert_eq!(a.to_json_pretty(), b.to_json_pretty());
        assert_eq!(
            a.experiments.len(),
            21,
            "18 sync experiments + X1 + the DP and SWEEP probes"
        );
        assert!(a.experiments.iter().all(|e| e.passed), "{a:?}");
        assert_eq!(a.experiments.last().unwrap().id, SWEEP_PROBE_ID);
        assert!(!a.timed);
        assert_eq!(a.total_wall_ms, 0.0);
    }

    #[test]
    fn report_order_matches_registry_order() {
        let registry_ids: Vec<&str> = bench_registry().iter().map(|e| e.id()).collect();
        // The registry itself is in id order: E1..E12 then X1..X6.
        let mut sorted = registry_ids.clone();
        sorted.sort_by_key(|id| id_sort_key(id));
        assert_eq!(registry_ids, sorted, "registry must be in id order");
        assert!(
            registry_ids.windows(2).all(|w| w[0] != w[1]),
            "ids are unique"
        );
        let x1 = registry_ids.iter().position(|id| *id == "X1").unwrap();
        let x2 = registry_ids.iter().position(|id| *id == "X2").unwrap();
        assert!(x1 < x2, "X1 must not be appended after the other X*");

        // And the emitted JSON lists experiments in exactly that order.
        let report = run_bench(&BenchConfig {
            full: false,
            trials: Some(10),
            stable: true,
        });
        let report_ids: Vec<&str> = report.experiments.iter().map(|e| e.id.as_str()).collect();
        // The synthetic DP and SWEEP throughput probes are appended after
        // the registry, in that order.
        assert_eq!(report_ids[..registry_ids.len()], registry_ids);
        assert_eq!(
            report_ids[registry_ids.len()..],
            [DP_PROBE_ID, SWEEP_PROBE_ID]
        );
        let json = report.to_json_pretty();
        let mut last = 0;
        for id in &registry_ids {
            let needle = format!("\"id\": \"{id}\"");
            let pos = json[last..]
                .find(&needle)
                .unwrap_or_else(|| panic!("{id} out of order in JSON"));
            last += pos + needle.len();
        }
    }

    fn report_with(entries: &[(&str, f64, f64)]) -> BenchReport {
        BenchReport {
            schema: 1,
            scale: "quick".to_owned(),
            trials: 100,
            seed: 42,
            timed: true,
            experiments: entries
                .iter()
                .map(|(id, wall_ms, tps)| BenchEntry {
                    id: (*id).to_owned(),
                    passed: true,
                    wall_ms: *wall_ms,
                    trials_per_sec: *tps,
                })
                .collect(),
            total_wall_ms: entries.iter().map(|(_, w, _)| w).sum(),
        }
    }

    #[test]
    fn compare_flags_only_large_throughput_drops() {
        let old = report_with(&[("E1", 10.0, 1000.0), ("E2", 10.0, 1000.0)]);
        // E1 is 20% slower (within tolerance), E2 is 50% slower (regressed).
        let new = report_with(&[("E1", 12.5, 800.0), ("E2", 20.0, 500.0)]);
        let cmp = compare_reports(&old, &new);
        assert_eq!(cmp.regressions(), vec!["E2"]);
        assert!(!cmp.entries[0].regression);
        assert!((cmp.entries[0].throughput_delta_pct - -20.0).abs() < 1e-9);
        assert!((cmp.entries[1].throughput_delta_pct - -50.0).abs() < 1e-9);
        let shown = cmp.to_string();
        assert!(shown.contains("REGRESSION"), "{shown}");

        // Speedups are never regressions.
        let faster = report_with(&[("E1", 2.0, 5000.0), ("E2", 2.0, 5000.0)]);
        assert!(compare_reports(&old, &faster).regressions().is_empty());
    }

    #[test]
    fn compare_never_gates_sub_floor_walls() {
        // E1 sits below the 10ms floor on both sides; E2 crosses it on one
        // side only. Both drop >25% in throughput, but neither can be a
        // regression — only E3, timed above the floor on both sides, gates.
        let old = report_with(&[
            ("E1", 0.2, 10_000.0),
            ("E2", 8.0, 250.0),
            ("E3", 50.0, 40.0),
        ]);
        let new = report_with(&[
            ("E1", 0.4, 5_000.0),
            ("E2", 16.0, 125.0),
            ("E3", 100.0, 20.0),
        ]);
        let cmp = compare_reports(&old, &new);
        assert_eq!(cmp.regressions(), vec!["E3"]);
        // The deltas are still reported for the sub-floor entries.
        assert!((cmp.entries[0].throughput_delta_pct - -50.0).abs() < 1e-9);
        assert!((cmp.entries[1].throughput_delta_pct - -50.0).abs() < 1e-9);
    }

    #[test]
    fn compare_handles_untimed_and_mismatched_ids() {
        let old = report_with(&[("E1", 10.0, 1000.0), ("E9", 5.0, 2000.0)]);
        let mut new = report_with(&[("E1", 0.0, 0.0), ("X1", 3.0, 100.0)]);
        new.timed = false;
        let cmp = compare_reports(&old, &new);
        // Untimed entries compare with zero delta and never regress.
        assert!(cmp.regressions().is_empty());
        assert_eq!(cmp.entries[0].throughput_delta_pct, 0.0);
        assert_eq!(cmp.only_in_old, vec!["E9"]);
        assert_eq!(cmp.only_in_new, vec!["X1"]);
    }

    #[test]
    fn compare_round_trips_through_report_json() {
        // A committed BENCH_experiments.json parses back into a comparable
        // report — the shape `ca bench --compare` relies on.
        let old = report_with(&[("E1", 10.0, 1000.0)]);
        let parsed: BenchReport = serde::json::from_str(&old.to_json_pretty()).unwrap();
        assert_eq!(parsed, old);
        assert!(compare_reports(&parsed, &old).regressions().is_empty());
    }

    #[test]
    fn timed_reports_carry_positive_clocks() {
        let config = BenchConfig {
            full: false,
            trials: Some(50),
            stable: false,
        };
        let report = run_bench(&config);
        assert!(report.timed);
        assert!(report.total_wall_ms > 0.0);
        assert!(report.experiments.iter().all(|e| e.trials_per_sec > 0.0));
        assert_eq!(report.trials, 50);
    }
}
