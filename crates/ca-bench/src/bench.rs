//! The `ca bench` engine: wall-clock timing of every experiment.
//!
//! Times each registry experiment (E1–E12 plus the X* extensions, including
//! the asynchronous X1) at a chosen [`Scale`] and produces a JSON report —
//! the `BENCH_experiments.json` perf trajectory. Experiments run serially so
//! the per-experiment wall times are honest (no cross-experiment core
//! contention); each experiment still parallelizes internally.
//!
//! The JSON is byte-stable: struct field order is fixed, the registry order
//! is fixed, and every value other than the clock readings is a
//! deterministic function of the scale. With timing suppressed
//! ([`BenchConfig::stable`]) the whole report is deterministic, which the
//! golden tests use to pin the format.

use ca_analysis::experiments::{all_experiments, Experiment, Scale};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Configuration for one bench sweep.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BenchConfig {
    /// Use [`Scale::full`] instead of [`Scale::quick`].
    pub full: bool,
    /// Override the scale's trial count (for fast smoke runs).
    pub trials: Option<u64>,
    /// Zero out all clock readings so the report is byte-deterministic.
    pub stable: bool,
}

impl BenchConfig {
    /// The scale this configuration resolves to.
    pub fn scale(&self) -> Scale {
        let mut scale = if self.full {
            Scale::full()
        } else {
            Scale::quick()
        };
        if let Some(trials) = self.trials {
            scale.trials = trials;
        }
        scale
    }
}

/// One experiment's timing.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BenchEntry {
    /// Experiment id (`"E1"`, …).
    pub id: String,
    /// Whether the experiment's paper-shape checks passed.
    pub passed: bool,
    /// Wall time in milliseconds (0 when timing is suppressed).
    pub wall_ms: f64,
    /// Monte Carlo trials per wall second (0 when timing is suppressed).
    ///
    /// Uses the scale's per-probability trial count as the work unit — a
    /// throughput proxy that is comparable release to release at a fixed
    /// scale (exact-only experiments like E9 report their table rebuild
    /// rate in the same unit).
    pub trials_per_sec: f64,
}

/// The full bench report (`BENCH_experiments.json`).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// Report format version.
    pub schema: u32,
    /// `"quick"` or `"full"` (the base scale before any trial override).
    pub scale: String,
    /// Monte Carlo trials per estimated probability.
    pub trials: u64,
    /// Base seed of the sweep.
    pub seed: u64,
    /// Whether the clock readings are real (false under `--stable`).
    pub timed: bool,
    /// Per-experiment timings, in registry order.
    pub experiments: Vec<BenchEntry>,
    /// Total wall time across all experiments, milliseconds.
    pub total_wall_ms: f64,
}

impl BenchReport {
    /// Serializes the report as pretty JSON (deterministic field and
    /// registry order).
    pub fn to_json_pretty(&self) -> String {
        serde::json::to_string_pretty(self).expect("bench reports are always serializable")
    }
}

/// The full registry `ca bench` sweeps: the synchronous suite plus the
/// asynchronous extension experiments.
pub fn bench_registry() -> Vec<Box<dyn Experiment>> {
    let mut registry = all_experiments();
    registry.extend(ca_async::experiments::extension_experiments());
    registry
}

/// Runs every experiment once at the configured scale, timing each.
pub fn run_bench(config: &BenchConfig) -> BenchReport {
    let scale = config.scale();
    let mut experiments = Vec::new();
    let mut total_ms = 0.0;
    for experiment in bench_registry() {
        let start = Instant::now();
        let result = experiment.run(scale);
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        total_ms += wall_ms;
        let (wall_ms, trials_per_sec) = if config.stable {
            (0.0, 0.0)
        } else {
            (wall_ms, scale.trials as f64 / (wall_ms / 1e3))
        };
        experiments.push(BenchEntry {
            id: result.id,
            passed: result.passed,
            wall_ms,
            trials_per_sec,
        });
    }
    BenchReport {
        schema: 1,
        scale: if config.full { "full" } else { "quick" }.to_owned(),
        trials: scale.trials,
        seed: scale.seed,
        timed: !config.stable,
        experiments,
        total_wall_ms: if config.stable { 0.0 } else { total_ms },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_reports_are_deterministic() {
        let config = BenchConfig {
            full: false,
            trials: Some(50),
            stable: true,
        };
        let a = run_bench(&config);
        let b = run_bench(&config);
        assert_eq!(a, b);
        assert_eq!(a.to_json_pretty(), b.to_json_pretty());
        assert_eq!(a.experiments.len(), 17, "16 sync experiments + X1");
        assert!(!a.timed);
        assert_eq!(a.total_wall_ms, 0.0);
    }

    #[test]
    fn timed_reports_carry_positive_clocks() {
        let config = BenchConfig {
            full: false,
            trials: Some(50),
            stable: false,
        };
        let report = run_bench(&config);
        assert!(report.timed);
        assert!(report.total_wall_ms > 0.0);
        assert!(report.experiments.iter().all(|e| e.trials_per_sec > 0.0));
        assert_eq!(report.trials, 50);
    }
}
