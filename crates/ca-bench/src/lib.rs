//! Benchmark support: the `ca bench` engine and shared fixtures for the
//! Criterion benches.

#![warn(missing_docs)]

pub mod bench;
pub mod profile;

use ca_core::graph::Graph;
use ca_core::run::Run;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Standard benchmark topologies: `(name, graph)`.
pub fn bench_graphs() -> Vec<(&'static str, Graph)> {
    vec![
        ("K2", Graph::complete(2).expect("graph")),
        ("K8", Graph::complete(8).expect("graph")),
        ("K32", Graph::complete(32).expect("graph")),
        ("ring32", Graph::ring(32).expect("graph")),
        ("line32", Graph::line(32).expect("graph")),
    ]
}

/// A reproducible random run over `graph` with the given keep rate.
pub fn bench_run(graph: &Graph, n: u32, keep: f64, seed: u64) -> Run {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut run = Run::good(graph, n);
    let slots: Vec<_> = run.messages().collect();
    for s in slots {
        if !rng.gen_bool(keep) {
            run.remove_message(s.from, s.to, s.round);
        }
    }
    run
}
