//! Integration test: the entire experiment suite (E1–E12) reproduces the
//! paper's claims end to end through the public API.
//!
//! Each experiment internally asserts the paper-shape checks (bounds hold,
//! tightness where claimed, crossovers where predicted); this test runs the
//! registry exactly the way the `expt` binary does.

use coordinated_attack::analysis::experiments::{run_all, Scale};

#[test]
fn every_experiment_passes() {
    let scale = Scale::quick();
    let mut failures = Vec::new();
    // The registry fans out across all cores; each experiment is a
    // deterministic function of `scale`, so results match a serial run.
    for result in run_all(scale, 0) {
        assert!(!result.table.is_empty(), "{} produced no table", result.id);
        assert!(
            !result.findings.is_empty(),
            "{} produced no findings",
            result.id
        );
        if !result.passed {
            failures.push(format!("{result}"));
        }
    }
    assert!(
        failures.is_empty(),
        "experiments failed:\n{}",
        failures.join("\n")
    );
}

#[test]
fn experiment_tables_export_csv() {
    use coordinated_attack::analysis::experiments::Experiment as _;
    let result = coordinated_attack::analysis::experiments::ProtocolAUnsafety.run(Scale::quick());
    let csv = result.table.to_csv();
    assert!(csv.lines().count() == result.table.len() + 1);
    assert!(csv.starts_with("N,"));
}
