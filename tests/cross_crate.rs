//! Integration tests across the workspace: exact analysis vs Monte Carlo vs
//! level theory must tell one consistent story through the public facade.

use coordinated_attack::prelude::*;
use coordinated_attack::sim::cut_family;

#[test]
fn exact_and_monte_carlo_agree_on_every_cut() {
    let graph = Graph::complete(2).expect("graph");
    let n = 6u32;
    let t = 4u64;
    let proto = ProtocolS::new(1.0 / t as f64);
    for (k, run) in cut_family(&graph, n).into_iter().enumerate() {
        let exact = protocol_s_outcomes(&graph, &run, t);
        let report = simulate(
            &proto,
            &graph,
            &FixedRun::new(run),
            SimConfig::new(3_000, 7_000 + k as u64),
        );
        assert!(
            report.liveness().consistent_with_z(exact.ta.to_f64(), 4.0),
            "cut {k}: exact TA {} vs MC {}",
            exact.ta,
            report.liveness()
        );
        assert!(
            report
                .disagreement()
                .consistent_with_z(exact.pa.to_f64(), 4.0),
            "cut {k}: exact PA {} vs MC {}",
            exact.pa,
            report.disagreement()
        );
    }
}

#[test]
fn liveness_formula_holds_on_random_topologies() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..5 {
        let m = rng.gen_range(3..7);
        let graph = Graph::random_connected(m, 0.6, &mut rng).expect("graph");
        let n = rng.gen_range(3..8);
        let t = rng.gen_range(2..10) as u64;
        let mut run = Run::good(&graph, n);
        let slots: Vec<_> = run.messages().collect();
        for s in slots {
            if rng.gen_bool(0.3) {
                run.remove_message(s.from, s.to, s.round);
            }
        }
        let ml = modified_levels(&run).min_level();
        let expected = (Rational::new(1, t as i128) * Rational::from(ml)).min(Rational::ONE);
        let exact = protocol_s_outcomes(&graph, &run, t);
        assert_eq!(exact.ta, expected, "Thm 6.8 equality on {graph}");
        assert!(
            exact.pa <= Rational::new(1, t as i128),
            "Thm 6.7 on {graph}"
        );
    }
}

#[test]
fn protocol_a_and_s_ranked_as_the_paper_says() {
    // At matched unsafety budgets (ε = 1/(N-1) for S, the natural U of A),
    // both achieve liveness 1 on the good run; on a half-dead run A gives 0
    // while S retains ~half its liveness.
    let graph = Graph::complete(2).expect("graph");
    let n = 9u32;
    let t = (n - 1) as u64;

    let good = Run::good(&graph, n);
    assert_eq!(protocol_a_outcomes(&graph, &good, n).ta, Rational::ONE);
    assert_eq!(protocol_s_outcomes(&graph, &good, t).ta, Rational::ONE);

    let mut half_dead = Run::good(&graph, n);
    half_dead.cut_from_round(Round::new(n / 2 + 1));
    let a = protocol_a_outcomes(&graph, &half_dead, n);
    let s = protocol_s_outcomes(&graph, &half_dead, t);
    // A: chain dies at n/2+1, so TA only for rfire ≤ n/2.
    assert!(a.ta < Rational::new(1, 2));
    // S: ML(R) = n/2, liveness = (n/2)/(n-1) ≈ 1/2.
    assert_eq!(s.ta, Rational::new((n / 2) as i128, t as i128));
    assert!(s.ta >= a.ta, "S dominates A on degraded runs");
}

#[test]
fn trace_rendering_through_facade() {
    use coordinated_attack::sim::trace::{attackers, render_decisions};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let graph = Graph::complete(3).expect("graph");
    let run = Run::good(&graph, 4);
    let proto = ProtocolS::new(1.0);
    let mut rng = StdRng::seed_from_u64(5);
    let tapes = TapeSet::random(&mut rng, 3, 64);
    let ex = execute(&proto, &graph, &run, &tapes);
    assert_eq!(render_decisions(&ex), "TA [111]");
    assert_eq!(attackers(&ex).len(), 3);
}

#[test]
fn repeat_combinator_interops_with_analysis() {
    // The Repeat strawman from §3 integrated across crates: simulate it and
    // verify it cannot beat Protocol A's 1/(N-1) at equal good-run liveness.
    let graph = Graph::complete(2).expect("graph");
    let n = 6u32;
    let rep = Repeat::new(ProtocolA::new(n), 3, CombineRule::All);
    let mut cut = Run::good(&graph, n);
    cut.cut_from_round(Round::new(n));
    let report = simulate(&rep, &graph, &FixedRun::new(cut), SimConfig::new(4_000, 55));
    let single = 1.0 / (n as f64 - 1.0);
    assert!(
        report.disagreement().point() > single,
        "repetition must not improve unsafety: {} vs {}",
        report.disagreement(),
        single
    );
}
