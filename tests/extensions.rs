//! Integration tests for the extension substrates, through the facade.

use coordinated_attack::asynchronous::{
    async_s_outcomes, AsyncConfig, CutCourier, ReliableCourier,
};
use coordinated_attack::prelude::*;
use coordinated_attack::protocols::ChainProtocol;

#[test]
fn async_and_sync_tell_the_same_tradeoff_story() {
    // Synchronous S on K2 at N rounds and asynchronous S at deadline N with
    // latency 1 reach comparable liveness, and both respect U ≤ ε exactly.
    let graph = Graph::complete(2).expect("graph");
    let t = 6u64;
    let n = 9u32;

    let sync = protocol_s_outcomes(&graph, &Run::good(&graph, n), t);
    let mut courier = ReliableCourier::new(1);
    let config = AsyncConfig::all_inputs(&graph, u64::from(n));
    let asy = async_s_outcomes(&graph, &config, &mut courier, t);

    assert!(sync.pa <= Rational::new(1, t as i128));
    assert!(asy.pa <= Rational::new(1, t as i128));
    // Event-driven gossip with latency 1 climbs at least as fast as rounds.
    assert!(asy.ta >= sync.ta, "async {} vs sync {}", asy.ta, sync.ta);

    // A cut at the same point hurts both, never past ε.
    let mut cut_run = Run::good(&graph, n);
    cut_run.cut_from_round(Round::new(4));
    let sync_cut = protocol_s_outcomes(&graph, &cut_run, t);
    let mut cut_courier = CutCourier::new(1, 4);
    let asy_cut = async_s_outcomes(&graph, &config, &mut cut_courier, t);
    assert!(sync_cut.ta < Rational::ONE && asy_cut.ta < Rational::ONE);
    assert!(sync_cut.pa <= Rational::new(1, t as i128));
    assert!(asy_cut.pa <= Rational::new(1, t as i128));
}

#[test]
fn chain_baseline_is_dominated_by_s_at_matched_budget() {
    // On a line of 3 with matched unsafety budgets, S's liveness on the good
    // run is at least the chain's on every cut run.
    use ca_core::exec::execute;
    let m = 3usize;
    let n = 12u32;
    let graph = Graph::line(m).expect("graph");
    let chain = ChainProtocol::new(n);
    let hi = ChainProtocol::max_rfire(m, n);

    // Chain's exact liveness on the good run: rfire always completes — 1.
    let mut total_attack_all_rfire = true;
    for rfire in 2..=hi {
        let word = u64::from(rfire - 2);
        let tapes = TapeSet::from_tapes(
            (0..m)
                .map(|i| {
                    coordinated_attack::core::tape::BitTape::from_words(vec![
                        if i == 0 {
                            word
                        } else {
                            0
                        };
                        64
                    ])
                })
                .collect(),
        );
        let ex = execute(&chain, &graph, &Run::good(&graph, n), &tapes);
        total_attack_all_rfire &= ex.outcome() == Outcome::TotalAttack;
    }
    assert!(total_attack_all_rfire, "chain lives on the good run");

    // S at ε = 1/(hi-1) sits exactly on its frontier min(1, ε·ML) on the
    // same graph (the line's diameter halves the level rate, so ML < N),
    // and its worst-case unsafety is ε — versus the chain's Θ(m) window.
    let t = u64::from(hi) - 1;
    let good = Run::good(&graph, n);
    let ml = modified_levels(&good).min_level();
    let s_good = protocol_s_outcomes(&graph, &good, t);
    assert_eq!(
        s_good.ta,
        (Rational::new(1, t as i128) * Rational::from(ml)).min(Rational::ONE)
    );
    assert!(s_good.ta > Rational::new(1, 2), "substantial liveness");
    let (s_worst, _) = coordinated_attack::analysis::exact::protocol_s_worst_pa(
        &graph,
        &coordinated_attack::sim::cut_family(&graph, n),
        t,
    );
    assert_eq!(s_worst, Rational::new(1, t as i128));
}

#[test]
fn eager_variant_wiring() {
    let eager = ProtocolS::eager(0.25);
    assert_eq!(eager.slack(), 1);
    let standard = ProtocolS::new(0.25);
    assert_eq!(standard.slack(), 0);
}

#[test]
fn adaptive_materialization_is_covered_by_worst_case() {
    // Any adaptive strategy's measured disagreement ≤ the exact worst case
    // over all runs it can produce (tiny instance, exhaustive).
    use coordinated_attack::sim::adaptive::{materialize, RandomizedCut};
    let graph = Graph::complete(2).expect("graph");
    let n = 2u32;
    let t = 2u64;
    let mut worst = Rational::ZERO;
    for run in Run::enumerate_all(&graph, n) {
        worst = worst.max(protocol_s_outcomes(&graph, &run, t).pa);
    }
    for seed in 0..50u64 {
        let mut adv = RandomizedCut::new(n, seed);
        let run = materialize(&mut adv, &graph, n);
        assert!(protocol_s_outcomes(&graph, &run, t).pa <= worst);
    }
}
