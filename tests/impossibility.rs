//! Integration test: the deterministic impossibility ([Gray 78],
//! [Halpern–Moses 84]) demonstrated by exhaustive adversary search.
//!
//! For each deterministic protocol we enumerate **all** runs of a tiny
//! instance and show the three requirements cannot coexist:
//! validity + certain agreement + nontriviality. Randomized Protocol S
//! escapes only by weakening agreement to `Pr[PA] ≤ ε`.

use coordinated_attack::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: u32 = 2;

/// Exhaustively classify a deterministic protocol over all runs of the tiny
/// instance. Returns (validity_ok, has_pa_run, has_ta_run).
fn classify<P: Protocol>(proto: &P) -> (bool, bool, bool) {
    let graph = Graph::complete(2).expect("graph");
    let mut rng = StdRng::seed_from_u64(1);
    let tapes = TapeSet::random(&mut rng, 2, proto.tape_bits().max(1));
    let mut validity_ok = true;
    let mut has_pa = false;
    let mut has_ta = false;
    for run in Run::enumerate_all(&graph, N) {
        let ex = execute(proto, &graph, &run, &tapes);
        match ex.outcome() {
            Outcome::PartialAttack => has_pa = true,
            Outcome::TotalAttack => {
                has_ta = true;
                if !run.has_any_input() {
                    validity_ok = false;
                }
            }
            Outcome::NoAttack => {}
        }
        if ex.outputs().iter().any(|&o| o) && !run.has_any_input() {
            validity_ok = false;
        }
    }
    (validity_ok, has_pa, has_ta)
}

#[test]
fn deterministic_flood_hits_the_impossibility() {
    let (validity, has_pa, has_ta) = classify(&DeterministicFlood::new());
    assert!(validity, "flood satisfies validity");
    assert!(has_ta, "flood is nontrivial (attacks on the good run)");
    assert!(has_pa, "…but some run forces certain disagreement");
}

#[test]
fn attack_on_input_hits_the_impossibility() {
    let (validity, has_pa, has_ta) = classify(&AttackOnInput::new());
    assert!(validity && has_ta && has_pa);
}

#[test]
fn fixed_threshold_hits_the_impossibility() {
    let (validity, has_pa, has_ta) = classify(&FixedThreshold::new(1));
    assert!(validity && has_ta && has_pa);
}

#[test]
fn never_attack_is_safe_but_trivial() {
    let (validity, has_pa, has_ta) = classify(&NeverAttack::new());
    assert!(validity);
    assert!(!has_pa, "never-attack never disagrees");
    assert!(!has_ta, "…because it gives up nontriviality entirely");
}

#[test]
fn protocol_s_escapes_with_probability_epsilon() {
    // Protocol S: validity holds surely; disagreement exists but only with
    // probability ≤ ε per run (exact, over the same exhaustive run space).
    let graph = Graph::complete(2).expect("graph");
    let t = 2u64;
    let eps = Rational::new(1, t as i128);
    let mut worst_pa = Rational::ZERO;
    let mut best_ta = Rational::ZERO;
    for run in Run::enumerate_all(&graph, N) {
        let out = protocol_s_outcomes(&graph, &run, t);
        if !run.has_any_input() {
            assert_eq!(out.na, Rational::ONE, "validity must be sure");
        }
        worst_pa = worst_pa.max(out.pa);
        best_ta = best_ta.max(out.ta);
    }
    assert_eq!(worst_pa, eps, "agreement weakens to exactly ε, never more");
    assert_eq!(
        best_ta,
        Rational::ONE,
        "nontriviality: with ML(R) = N = t, attack is certain on the good run"
    );
}
