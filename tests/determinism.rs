//! Determinism golden tests: the Monte Carlo engine's results are a function
//! of `(protocol, graph, sampler, trials, seed)` only — never of the thread
//! count or scheduling.
//!
//! Trial `t` draws all its randomness from an RNG seeded
//! `splitmix(seed, t)`, so whichever worker executes trial `t` produces the
//! same outcome, and the merged report is invariant under the static
//! partition of trials across workers.

use coordinated_attack::prelude::*;
use coordinated_attack::sim::RandomRun;

// `simulate` dispatches the Protocol S and threshold cases below through the
// bit-sliced engine (fixed-run and random-drop samplers); the random-run
// cases fall back to the scalar path. Both paths are covered by the same
// invariant, and tests/sliced_differential.rs additionally pins the two
// paths byte-identical to each other.

fn report_for_threads<P, S>(
    protocol: &P,
    graph: &Graph,
    sampler: &S,
    trials: u64,
    seed: u64,
    threads: usize,
) -> SimReport
where
    P: Protocol + Sync,
    S: coordinated_attack::sim::RunSampler,
{
    let config = SimConfig {
        trials,
        seed,
        threads,
    };
    simulate(protocol, graph, sampler, config)
}

fn assert_thread_invariant<P, S>(label: &str, protocol: &P, graph: &Graph, sampler: &S, seed: u64)
where
    P: Protocol + Sync,
    S: coordinated_attack::sim::RunSampler,
{
    let baseline = report_for_threads(protocol, graph, sampler, 600, seed, 1);
    for threads in [2usize, 8] {
        let report = report_for_threads(protocol, graph, sampler, 600, seed, threads);
        assert_eq!(
            baseline, report,
            "{label}: report at {threads} threads differs from the serial run"
        );
    }
}

#[test]
fn protocol_s_reports_are_thread_count_invariant() {
    let graph = Graph::complete(4).expect("graph");
    let proto = ProtocolS::new(1.0 / 8.0);
    assert_thread_invariant(
        "S/fixed-good",
        &proto,
        &graph,
        &FixedRun::new(Run::good(&graph, 6)),
        7,
    );
    assert_thread_invariant(
        "S/random-drop",
        &proto,
        &graph,
        &RandomDrop::new(&graph, 6, 0.3),
        11,
    );
    assert_thread_invariant(
        "S/random-run",
        &proto,
        &graph,
        &RandomRun::new(graph.clone(), 6, 0.8, 0.7),
        13,
    );
}

#[test]
fn protocol_a_reports_are_thread_count_invariant() {
    let graph = Graph::complete(2).expect("graph");
    let proto = ProtocolA::new(8);
    assert_thread_invariant(
        "A/fixed-good",
        &proto,
        &graph,
        &FixedRun::new(Run::good(&graph, 8)),
        17,
    );
    assert_thread_invariant(
        "A/random-drop",
        &proto,
        &graph,
        &RandomDrop::new(&graph, 8, 0.2),
        19,
    );
}

#[test]
fn sliced_threshold_reports_are_thread_count_invariant() {
    let graph = Graph::complete(3).expect("graph");
    let proto = FixedThreshold::new(5);
    assert_thread_invariant(
        "θ/fixed-good",
        &proto,
        &graph,
        &FixedRun::new(Run::good(&graph, 5)),
        23,
    );
    assert_thread_invariant(
        "θ/random-drop",
        &proto,
        &graph,
        &RandomDrop::new(&graph, 5, 0.4),
        29,
    );
}

#[test]
fn sliced_and_scalar_paths_agree_across_thread_counts() {
    // A direct cross-path golden: the serial scalar report is the oracle,
    // and the sliced path must reproduce it byte-for-byte at every width.
    let graph = Graph::complete(3).expect("graph");
    let proto = ProtocolS::new(0.25);
    let sampler = RandomDrop::new(&graph, 6, 0.3);
    let config = SimConfig {
        trials: 600,
        seed: 37,
        threads: 1,
    };
    let oracle = simulate_scalar(&proto, &graph, &sampler, config);
    for threads in [1usize, 2, 8] {
        let config = SimConfig { threads, ..config };
        let sliced = simulate_sliced(&proto, &graph, &sampler, config)
            .expect("Protocol S over RandomDrop supports the sliced path");
        assert_eq!(
            sliced, oracle,
            "sliced report at {threads} threads differs from the scalar oracle"
        );
    }
}
