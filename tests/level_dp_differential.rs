//! Differential oracle for the level-vector DP.
//!
//! The DP (`ca_analysis::level_dp`) promises **exact** agreement — equal
//! rationals, not statistically close — with three independent oracles:
//!
//! * per fixed run, the closed-form `protocol_s_outcomes_slack` and (for
//!   power-of-two `t`) exhaustive enumeration of real `GridS` executions
//!   over every leader tape — the discretization is exact when `t | 2^b`;
//! * per fixed run, the deterministic `FixedThreshold` protocol executed
//!   outright (its outcome distribution is an indicator);
//! * over the whole run space, `worst_case_by_enumeration` — every input
//!   subset × delivery pattern at `bits ≤ 24`, the strongest adversary the
//!   enumeration wall permits.
//!
//! Past the wall, enumeration must refuse with its typed error while the
//! sweep keeps answering (the point of the DP) — pinned by the boundary
//! test. The audited fallback mirrors the Monte Carlo engine's
//! sliced-vs-scalar spot-check contract.

use coordinated_attack::analysis::enumeration::enumerate_leader_tapes;
use coordinated_attack::analysis::exact::protocol_s_outcomes_slack;
use coordinated_attack::analysis::level_dp::{self, DpSpec};
use coordinated_attack::core::tape::BitTape;
use coordinated_attack::prelude::*;
use coordinated_attack::protocols::GridS;
use coordinated_attack::sim::RunSampler;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic random thinning of the good run: inputs kept with
/// probability 3/4, delivery slots with probability 3/5 (the same mix the
/// sliced-engine differential uses).
fn thin_run(g: &Graph, n: u32, seed: u64) -> Run {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut run = Run::good(g, n);
    for i in g.vertices() {
        if !rng.gen_bool(0.75) {
            run.remove_input(i);
        }
    }
    let slots: Vec<_> = run.messages().collect();
    for s in slots {
        if !rng.gen_bool(0.6) {
            run.remove_message(s.from, s.to, s.round);
        }
    }
    run
}

/// A DP-eligible (graph, horizon) pair small enough for the run-space
/// enumeration oracle: `m + E·n ≤ 24` bits.
fn tiny_shape(choice: u8) -> (Graph, u32) {
    match choice % 4 {
        0 => (
            Graph::complete(2).expect("graph"),
            1 + u32::from(choice) % 6,
        ),
        1 => (
            Graph::complete(3).expect("graph"),
            1 + u32::from(choice) % 2,
        ),
        2 => (Graph::line(3).expect("graph"), 1 + u32::from(choice) % 3),
        _ => (Graph::ring(4).expect("graph"), 1),
    }
}

/// One of the four DP-eligible firing rules.
fn spec_for(choice: u8, t: u64, theta: u32) -> DpSpec {
    match choice % 4 {
        0 => DpSpec::protocol_s(t),
        1 => DpSpec::message_validity(t),
        2 => DpSpec::eager(t),
        _ => DpSpec::threshold(theta),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The whole-run-space differential: the sweep's worst-case TA and PA
    /// must equal brute force over every enumerated run, for every firing
    /// rule, on shapes the 24-bit oracle can still reach.
    #[test]
    fn sweep_equals_run_enumeration_on_tiny_shapes(
        shape in any::<u8>(),
        spec_choice in any::<u8>(),
        t in 1u64..=8,
        theta in 1u32..=4,
    ) {
        let (g, n) = tiny_shape(shape);
        let spec = spec_for(spec_choice, t, theta);
        let report = level_dp::sweep(&g, n, &spec, &[n]).expect("DP-eligible");
        let (ta, pa) = level_dp::worst_case_by_enumeration(&g, n, &spec).expect("oracle");
        prop_assert_eq!(report.final_max_ta, ta, "max TA diverged");
        prop_assert_eq!(report.u_s, pa, "max PA diverged");
    }

    /// Per-run differential against the independent closed form, across the
    /// slack family (Protocol S and eager) on thinned runs.
    #[test]
    fn run_outcomes_equal_the_closed_form_on_thinned_runs(
        m in 2usize..=4,
        n in 1u32..=6,
        run_seed in any::<u64>(),
        t in 1u64..=9,
        slack in 0u32..=1,
    ) {
        let g = Graph::complete(m).expect("graph");
        let run = thin_run(&g, n, run_seed);
        let spec = if slack == 0 { DpSpec::protocol_s(t) } else { DpSpec::eager(t) };
        let dp = level_dp::run_outcomes(&g, &run, &spec).expect("eligible");
        let oracle = protocol_s_outcomes_slack(&g, &run, t, slack);
        prop_assert_eq!(dp, oracle);
    }

    /// Per-run differential against enumerated **executions**: for
    /// power-of-two `t = 2^k`, `GridS` with a `2^k`-point firing grid is not
    /// an approximation — `t` divides the grid, so every threshold
    /// probability is exactly `count/t` and the enumerated distribution over
    /// all `2^k` leader tapes must equal the DP's rationals bit for bit.
    #[test]
    fn run_outcomes_equal_grid_tape_enumeration_at_power_of_two_t(
        m in 2usize..=3,
        n in 1u32..=5,
        run_seed in any::<u64>(),
        k in 1u32..=4,
    ) {
        let g = Graph::complete(m).expect("graph");
        let run = thin_run(&g, n, run_seed);
        let t = 1u64 << k;
        let dp = level_dp::run_outcomes(&g, &run, &DpSpec::protocol_s(t)).expect("eligible");
        let grid = GridS::new(1.0 / t as f64, k);
        let (oracle, _) = enumerate_leader_tapes(&grid, &g, &run, k);
        prop_assert_eq!(dp, oracle);
    }

    /// Per-run differential for the deterministic threshold rule: the DP's
    /// distribution must be the indicator of the executed outcome.
    #[test]
    fn threshold_outcomes_equal_the_executed_indicator(
        m in 2usize..=4,
        n in 1u32..=6,
        run_seed in any::<u64>(),
        theta in 1u32..=5,
    ) {
        let g = Graph::complete(m).expect("graph");
        let run = thin_run(&g, n, run_seed);
        let dp = level_dp::run_outcomes(&g, &run, &DpSpec::threshold(theta)).expect("eligible");
        let proto = FixedThreshold::new(theta);
        let tapes = TapeSet::from_tapes(vec![BitTape::from_words(vec![0]); m]);
        let ex = execute(&proto, &g, &run, &tapes);
        let (ta, na, pa) = match ex.outcome() {
            Outcome::TotalAttack => (Rational::ONE, Rational::ZERO, Rational::ZERO),
            Outcome::NoAttack => (Rational::ZERO, Rational::ONE, Rational::ZERO),
            Outcome::PartialAttack => (Rational::ZERO, Rational::ZERO, Rational::ONE),
        };
        prop_assert_eq!((dp.ta, dp.na, dp.pa), (ta, na, pa));
    }

    /// The audited fallback path: on every DP-eligible run it must agree
    /// with the scalar closed form and report that the DP answered — the
    /// fallback only fires on divergence, and there is none.
    #[test]
    fn audited_fallback_routes_the_dp_answer_through(
        m in 2usize..=4,
        n in 1u32..=6,
        run_seed in any::<u64>(),
        t in 1u64..=9,
    ) {
        let g = Graph::complete(m).expect("graph");
        let run = thin_run(&g, n, run_seed);
        let (out, used_dp) = level_dp::outcomes_with_fallback(&g, &run, t, true);
        prop_assert!(used_dp, "the DP must survive its own audit");
        prop_assert_eq!(out, protocol_s_outcomes(&g, &run, t));
    }

    /// Sampler-driven runs (the Monte Carlo engine's run distribution, not
    /// just thinnings of the good run) go through the same audited path.
    #[test]
    fn audited_fallback_holds_on_sampled_runs(
        n in 1u32..=6,
        drop_pct in 0u64..=100,
        sample_seed in any::<u64>(),
        t in 1u64..=9,
    ) {
        let g = Graph::complete(3).expect("graph");
        let sampler = RandomDrop::new(&g, n, drop_pct as f64 / 100.0);
        let run = sampler.sample(&mut StdRng::seed_from_u64(sample_seed));
        let (out, used_dp) = level_dp::outcomes_with_fallback(&g, &run, t, true);
        prop_assert!(used_dp);
        prop_assert_eq!(out, protocol_s_outcomes(&g, &run, t));
    }
}

/// The exact boundary of the enumeration oracle, and the first step past it.
/// On `K2`, `n = 11` is the largest enumerable shape (`2 + 2·11 = 24`
/// bits); `n = 12` is 26 bits — `try_enumerate_all` must refuse with its
/// typed error while the sweep keeps answering, with the closed-form §8
/// values. The oracle cross-check runs at `n = 8` (`2^18` runs): same code
/// path as the wall, debug-build-friendly size.
#[test]
fn sweep_crosses_the_enumeration_wall_with_the_closed_form_values() {
    let g = Graph::complete(2).expect("graph");
    let spec = DpSpec::protocol_s(12);

    // Below the wall the oracle works and the sweep matches it.
    let below_wall = level_dp::sweep(&g, 8, &spec, &[8]).expect("sweep below the wall");
    let (ta, pa) = level_dp::worst_case_by_enumeration(&g, 8, &spec).expect("18 bits is legal");
    assert_eq!(below_wall.final_max_ta, ta);
    assert_eq!(below_wall.u_s, pa);

    // One round further: enumeration refuses, the DP answers.
    let err = Run::try_enumerate_all(&g, 12).expect_err("26 bits must refuse");
    assert!(
        err.to_string().contains("2^26 runs"),
        "guard names the size and unit: {err}"
    );
    assert!(level_dp::worst_case_by_enumeration(&g, 12, &spec).is_err());
    let past_wall = level_dp::sweep(&g, 12, &spec, &[12]).expect("sweep past the wall");
    // ML(good run) = N on K2, so liveness 1 arrives exactly at N = t = 12,
    // and the worst-case disagreement is ε = 1/12 (Theorems 6.7/6.8).
    assert_eq!(past_wall.first_certain_round, Some(12));
    assert_eq!(past_wall.final_max_ta, Rational::ONE);
    assert_eq!(past_wall.u_s, Rational::new(1, 12));
}
