//! Integration test: the three independent probability pipelines agree.
//!
//! For the same run, (1) the closed-form analytic integration, (2) the
//! exhaustive-tape enumeration of real `GridS` executions, and (3) Monte
//! Carlo over 64-bit-rfire `ProtocolS` executions must tell one story. Any
//! disagreement would mean a bug in exactly one of them — three-way
//! redundancy over completely different mechanisms.

use coordinated_attack::analysis::enumeration::enumerate_leader_tapes;
use coordinated_attack::prelude::*;

#[test]
fn three_pipelines_one_answer() {
    let graph = Graph::complete(2).expect("graph");
    let n = 6u32;
    let t = 4u64;
    let bits = 6u32; // 64-point grid: contains every integer threshold for t = 4

    for cut in [2u32, 4, 6] {
        let mut run = Run::good(&graph, n);
        run.cut_from_round(Round::new(cut));

        // Pipeline 1: analytic closed form.
        let analytic = protocol_s_outcomes(&graph, &run, t);

        // Pipeline 2: exhaustive enumeration of GridS tapes.
        let grid = GridS::new(1.0 / t as f64, bits);
        let (enumerated, decision_probs) = enumerate_leader_tapes(&grid, &graph, &run, bits);
        assert_eq!(analytic, enumerated, "analytic vs enumeration at cut {cut}");

        // Decision probabilities respect the §2 lemmas.
        for &p in &decision_probs {
            assert!(enumerated.ta <= p, "Lemma 2.3");
        }

        // Pipeline 3: Monte Carlo over the continuous-rfire protocol.
        let proto = ProtocolS::new(1.0 / t as f64);
        let report = simulate(
            &proto,
            &graph,
            &FixedRun::new(run),
            SimConfig::new(20_000, 777 + u64::from(cut)),
        );
        assert!(
            report
                .liveness()
                .consistent_with_z(analytic.ta.to_f64(), 4.0),
            "cut {cut}: MC liveness {} vs analytic {}",
            report.liveness(),
            analytic.ta
        );
        assert!(
            report
                .disagreement()
                .consistent_with_z(analytic.pa.to_f64(), 4.0),
            "cut {cut}: MC disagreement {} vs analytic {}",
            report.disagreement(),
            analytic.pa
        );
    }
}

#[test]
fn grid_s_is_usable_from_the_prelude() {
    let grid = GridS::new(0.25, 4);
    assert_eq!(grid.bits(), 4);
    assert_eq!(grid.rfire_for(15), 4.0);
}
