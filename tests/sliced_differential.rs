//! Differential oracle for the bit-sliced Monte Carlo engine.
//!
//! The sliced path (`simulate_sliced`) promises **byte-identical** reports
//! to the scalar oracle (`simulate_scalar`) for the same `(seed, trials)` —
//! not statistically close, equal. These tests hold it to that over random
//! runs, protocols (all Protocol S validity/slack variants plus the
//! fixed-threshold baseline), samplers, trial counts that cross lane-group
//! boundaries, and the `bits == 24` enumeration-boundary run shape.

use coordinated_attack::prelude::*;
use coordinated_attack::sim::{RandomRun, RunSampler};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Asserts the full contract for one instance: the sliced path engages and
/// its report equals the scalar oracle's, and the public `simulate`
/// dispatcher returns that same report.
fn assert_paths_agree<P, S>(label: &str, proto: &P, g: &Graph, sampler: &S, cfg: SimConfig)
where
    P: Protocol + Sync,
    S: RunSampler,
{
    let sliced = simulate_sliced(proto, g, sampler, cfg)
        .unwrap_or_else(|| panic!("{label}: sliced path must engage"));
    let scalar = simulate_scalar(proto, g, sampler, cfg);
    assert_eq!(sliced, scalar, "{label}: sliced report differs from oracle");
    assert_eq!(
        simulate(proto, g, sampler, cfg),
        scalar,
        "{label}: dispatcher disagrees with the oracle"
    );
}

/// Dispatches a protocol choice to [`assert_paths_agree`]. All Protocol S
/// variants exercise `j_bits = 64` (leader rfire draw); the threshold
/// baseline exercises `j_bits = 0` (no tape at all).
fn check_protocols<S: RunSampler>(choice: u8, g: &Graph, sampler: &S, cfg: SimConfig) {
    match choice {
        0 => assert_paths_agree("S", &ProtocolS::new(0.2), g, sampler, cfg),
        1 => assert_paths_agree(
            "S/msg-validity",
            &ProtocolS::with_message_validity(0.2),
            g,
            sampler,
            cfg,
        ),
        2 => assert_paths_agree("S/eager", &ProtocolS::eager(0.2), g, sampler, cfg),
        _ => assert_paths_agree(
            "fixed-threshold",
            &FixedThreshold::new(u32::from(choice) - 2),
            g,
            sampler,
            cfg,
        ),
    }
}

/// A deterministic random thinning of the good run: inputs kept with
/// probability 3/4, delivery slots with probability 3/5.
fn thin_run(g: &Graph, n: u32, seed: u64) -> Run {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut run = Run::good(g, n);
    for i in g.vertices() {
        if !rng.gen_bool(0.75) {
            run.remove_input(i);
        }
    }
    let slots: Vec<_> = run.messages().collect();
    for s in slots {
        if !rng.gen_bool(0.6) {
            run.remove_message(s.from, s.to, s.round);
        }
    }
    run
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The main differential sweep: random complete graphs, horizons, base
    /// runs, protocol variants, samplers, and trial counts that straddle the
    /// 64-lane group width.
    #[test]
    fn sliced_reports_equal_scalar_reports(
        m in 2usize..=4,
        n in 1u32..=6,
        run_seed in any::<u64>(),
        mix in any::<u64>(),
        trials in 65u64..=200,
        seed in any::<u64>(),
    ) {
        // The shim's tuple strategies stop at 6 elements, so the discrete
        // choices ride in one word.
        let proto_choice = (mix % 7) as u8;
        let sampler_choice = ((mix >> 8) % 3) as u8;
        let drop_pct = (mix >> 16) % 101;
        let g = Graph::complete(m).expect("graph");
        let base = thin_run(&g, n, run_seed);
        let cfg = SimConfig { trials, seed, threads: 2 };
        let p = drop_pct as f64 / 100.0;
        match sampler_choice {
            0 => check_protocols(proto_choice, &g, &FixedRun::new(base), cfg),
            1 => check_protocols(proto_choice, &g, &RandomDrop::new(&g, n, p), cfg),
            _ => check_protocols(proto_choice, &g, &RandomDrop::over(base, p), cfg),
        }
    }

    /// The `bits == 24` enumeration boundary: `m = 2, n = 11` gives exactly
    /// 2 input bits + 22 slot bits, the largest shape `try_enumerate_all`
    /// accepts. Runs are built directly from a 24-bit mask (never via
    /// enumeration — 2^24 runs would not fit in memory).
    #[test]
    fn boundary_runs_at_24_bits_agree(
        mask in any::<u32>(),
        proto_is_s in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let n = 11u32;
        let g = Graph::complete(2).expect("graph");
        let mut run = Run::empty(2, n);
        for (b, i) in g.vertices().enumerate() {
            if mask & (1 << b) != 0 {
                run.add_input(i);
            }
        }
        for (b, s) in Run::good(&g, n).messages().enumerate() {
            if mask & (1 << (b + 2)) != 0 {
                run.add_message(s.from, s.to, s.round);
            }
        }
        let cfg = SimConfig { trials: 130, seed, threads: 2 };
        let sampler = FixedRun::new(run);
        if proto_is_s {
            assert_paths_agree("S@24-bit", &ProtocolS::new(0.1), &g, &sampler, cfg);
        } else {
            assert_paths_agree("θ@24-bit", &FixedThreshold::new(6), &g, &sampler, cfg);
        }
    }
}

#[test]
fn dispatcher_falls_back_for_unsupported_combinations() {
    let g = Graph::complete(2).expect("graph");
    let cfg = SimConfig::new(100, 7);
    let s = ProtocolS::new(0.25);
    // Input-randomizing sampler: no sliced description.
    let rr = RandomRun::new(g.clone(), 4, 0.8, 0.7);
    assert!(simulate_sliced(&s, &g, &rr, cfg).is_none());
    // Non-counting protocol: no sliced spec.
    let drop = RandomDrop::new(&g, 4, 0.3);
    assert!(simulate_sliced(&ProtocolA::new(4), &g, &drop, cfg).is_none());
    // The dispatcher still answers via the scalar path, and its report is
    // the scalar report.
    assert_eq!(
        simulate(&ProtocolA::new(4), &g, &drop, cfg),
        simulate_scalar(&ProtocolA::new(4), &g, &drop, cfg)
    );
}

#[test]
fn sliced_reports_are_thread_count_invariant_and_match_the_oracle() {
    // Thread-count byte-identity for the sliced path, mirroring
    // tests/determinism.rs, plus cross-path equality at every width.
    let g = Graph::complete(3).expect("graph");
    let proto = ProtocolS::new(0.125);
    let sampler = RandomDrop::new(&g, 6, 0.3);
    let base_cfg = SimConfig {
        trials: 600,
        seed: 31,
        threads: 1,
    };
    let oracle = simulate_scalar(&proto, &g, &sampler, base_cfg);
    for threads in [1usize, 2, 8] {
        let cfg = SimConfig {
            threads,
            ..base_cfg
        };
        let report = simulate_sliced(&proto, &g, &sampler, cfg).expect("sliced path must engage");
        assert_eq!(
            report, oracle,
            "sliced report at {threads} threads differs from the serial scalar oracle"
        );
    }
}
